package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"emp/internal/jobs"
	"emp/internal/obs"
	"emp/internal/server"
)

// JobsBenchResult is the JSON artifact written by `empbench -benchjobs`: the
// async job surface (POST /v1/jobs) measured against the sync path on the
// same solve. The anytime numbers are the point of the API — a watcher sees
// the first usable incumbent at FirstIncumbentMs, long before the solve
// converges — and the warm leg quantifies the resubmit win: a perturbed
// constraint set seeded from the previous job's partition needs fewer tabu
// moves than the same request solved cold.
type JobsBenchResult struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`

	// Sync baseline: POST /v1/solve of the same body, cold.
	SyncSeconds float64 `json:"sync_seconds"`

	// Async leg: submit latency (202 arrives while the solve runs), total
	// submit-to-done wall time, and the anytime profile from the event log.
	SubmitMillis            float64 `json:"submit_ms"`
	AsyncSeconds            float64 `json:"async_seconds"`
	FirstIncumbentMs        float64 `json:"first_incumbent_ms"`
	ConvergenceMs           float64 `json:"convergence_ms"`
	IncumbentEvents         int     `json:"incumbent_events"`
	TotalEvents             int     `json:"total_events"`
	FinalEventMatchesResult bool    `json:"final_event_matches_result"`

	// Warm leg: the perturbed constraint set solved warm (seeded from the
	// previous job on the same dataset) vs cold on a fresh server.
	WarmFromSet       bool    `json:"warm_from_set"`
	ColdP             int     `json:"cold_p"`
	WarmP             int     `json:"warm_p"`
	ColdMoves         int     `json:"cold_moves"`
	WarmMoves         int     `json:"warm_moves"`
	WarmMovesSavedPct float64 `json:"warm_moves_saved_pct"`
	ColdHetero        float64 `json:"cold_hetero"`
	WarmHetero        float64 `json:"warm_hetero"`
}

// jobsBody renders a solve request for the bench dataset with a
// parameterizable population floor (the warm leg perturbs it).
func jobsBody(scale float64, seed int64, floor int) string {
	scaleField := ""
	if scale > 0 && scale < 1 {
		scaleField = fmt.Sprintf(`"scale":%g,`, scale)
	}
	return fmt.Sprintf(`{"named":"2k",%s"constraints":"SUM(TOTALPOP) >= %d",
		"options":{"seed":%d}}`, scaleField, floor, seed)
}

// jobsDo fires one request through the handler and returns the recorder.
func jobsDo(h http.Handler, method, path, body string) (*benchRecorder, error) {
	req, err := http.NewRequest(method, path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	rec := newBenchRecorder()
	h.ServeHTTP(rec, req)
	return rec, nil
}

// jobsSubmit POSTs one job and returns its decoded status (202 fresh, 200
// done-on-arrival or dedup).
func jobsSubmit(h http.Handler, body string) (*server.JobStatus, error) {
	rec, err := jobsDo(h, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return nil, err
	}
	if rec.status != http.StatusAccepted && rec.status != http.StatusOK {
		return nil, fmt.Errorf("jobsbench: submit status %d: %s", rec.status, rec.body.String())
	}
	var st server.JobStatus
	if err := json.Unmarshal(rec.body.Bytes(), &st); err != nil {
		return nil, fmt.Errorf("jobsbench: decoding submit response: %w", err)
	}
	return &st, nil
}

// jobsAwait polls the status endpoint until the job is terminal and returns
// the final status (with the full result).
func jobsAwait(h http.Handler, id string) (*server.JobStatus, error) {
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		rec, err := jobsDo(h, http.MethodGet, "/v1/jobs/"+id, "")
		if err != nil {
			return nil, err
		}
		if rec.status != http.StatusOK {
			return nil, fmt.Errorf("jobsbench: status %d for job %s: %s", rec.status, id, rec.body.String())
		}
		var st server.JobStatus
		if err := json.Unmarshal(rec.body.Bytes(), &st); err != nil {
			return nil, err
		}
		switch st.State {
		case "done":
			return &st, nil
		case "failed", "canceled":
			return nil, fmt.Errorf("jobsbench: job %s ended %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("jobsbench: job %s did not finish", id)
}

// jobsEvents replays a finished job's NDJSON event stream (the handler
// returns once the log is sealed, so this is a plain request).
func jobsEvents(h http.Handler, id string) ([]jobs.Event, error) {
	rec, err := jobsDo(h, http.MethodGet, "/v1/jobs/"+id+"/events", "")
	if err != nil {
		return nil, err
	}
	if rec.status != http.StatusOK {
		return nil, fmt.Errorf("jobsbench: events status %d: %s", rec.status, rec.body.String())
	}
	var out []jobs.Event
	sc := bufio.NewScanner(&rec.body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("jobsbench: bad event %q: %w", sc.Text(), err)
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

// jobsRun submits one job and waits for it, returning the final status.
func jobsRun(h http.Handler, body string) (*server.JobStatus, error) {
	st, err := jobsSubmit(h, body)
	if err != nil {
		return nil, err
	}
	return jobsAwait(h, st.ID)
}

// JobsBench measures the async job subsystem on in-process handlers: the
// sync baseline and the cold-control leg run on their own handler so every
// compared solve is cold, while the warm leg deliberately reuses the async
// handler's job store to get the warm-start seed.
func JobsBench(cfg Config) (*JobsBenchResult, error) {
	cfg = cfg.withDefaults()
	const (
		baseFloor      = 25000
		perturbedFloor = 24800
	)
	baseBody := jobsBody(cfg.Scale, cfg.Seed, baseFloor)
	perturbedBody := jobsBody(cfg.Scale, cfg.Seed, perturbedFloor)

	asyncH := server.NewHandler(server.Config{Registry: obs.New()})
	coldH := server.NewHandler(server.Config{Registry: obs.New()})

	out := &JobsBenchResult{Dataset: "2k", Scale: cfg.Scale, Seed: cfg.Seed}

	// Async leg: submit the base request cold and collect the anytime
	// profile from the event log.
	submitStart := time.Now()
	sub, err := jobsSubmit(asyncH, baseBody)
	if err != nil {
		return nil, err
	}
	out.SubmitMillis = float64(time.Since(submitStart).Microseconds()) / 1000
	final, err := jobsAwait(asyncH, sub.ID)
	if err != nil {
		return nil, err
	}
	out.AsyncSeconds = time.Since(submitStart).Seconds()
	evs, err := jobsEvents(asyncH, sub.ID)
	if err != nil {
		return nil, err
	}
	out.TotalEvents = len(evs)
	for _, ev := range evs {
		switch ev.Type {
		case "incumbent":
			if out.IncumbentEvents == 0 {
				out.FirstIncumbentMs = ev.ElapsedMs
			}
			out.IncumbentEvents++
			out.ConvergenceMs = ev.ElapsedMs
		case "done":
			out.FinalEventMatchesResult = final.Result != nil &&
				ev.P == final.Result.P && ev.H == final.Result.HeteroAfter
		}
	}

	// Sync baseline: the same body, cold, through POST /v1/solve on a fresh
	// handler (the async handler's result cache now holds it).
	syncStart := time.Now()
	rec, err := jobsDo(coldH, http.MethodPost, "/v1/solve", baseBody)
	if err != nil {
		return nil, err
	}
	if rec.status != http.StatusOK {
		return nil, fmt.Errorf("jobsbench: sync status %d: %s", rec.status, rec.body.String())
	}
	out.SyncSeconds = time.Since(syncStart).Seconds()

	// Warm leg: the perturbed floor on the async handler warm-starts from the
	// base job's partition; the same request on the cold handler is the
	// control (its store has no job on this dataset key).
	warm, err := jobsRun(asyncH, perturbedBody)
	if err != nil {
		return nil, err
	}
	out.WarmFromSet = warm.WarmFrom != ""
	cold, err := jobsRun(coldH, perturbedBody)
	if err != nil {
		return nil, err
	}
	if warm.Result == nil || cold.Result == nil {
		return nil, fmt.Errorf("jobsbench: warm leg missing results")
	}
	out.WarmP, out.WarmMoves, out.WarmHetero = warm.Result.P, warm.Result.TabuMoves, warm.Result.HeteroAfter
	out.ColdP, out.ColdMoves, out.ColdHetero = cold.Result.P, cold.Result.TabuMoves, cold.Result.HeteroAfter
	if out.ColdMoves > 0 {
		out.WarmMovesSavedPct = 100 * float64(out.ColdMoves-out.WarmMoves) / float64(out.ColdMoves)
	}
	return out, nil
}

// WriteJobsBench runs JobsBench and writes the JSON artifact.
func WriteJobsBench(cfg Config, path string) (*JobsBenchResult, error) {
	res, err := JobsBench(cfg)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("jobsbench: %w", err)
	}
	return res, nil
}
