package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"emp/internal/durable"
	"emp/internal/fault"
	"emp/internal/obs"
	"emp/internal/server"
)

// RecoveryBenchResult is the JSON artifact written by `empbench
// -benchrecovery`: what the durable-state layer (docs/ROBUSTNESS.md) buys
// across a restart. The snapshot leg compares a cold boot (every request
// solved from scratch) against a restored boot serving the same requests
// from the reloaded result cache; the checkpoint leg replays a crash image —
// a journaled running job plus its last incumbent checkpoint — and measures
// how many tabu moves the checkpoint-resumed solve needs versus solving the
// same request cold, with the never-worse p/H guarantee checked.
type RecoveryBenchResult struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`

	// Snapshot leg: N distinct requests solved on boot A (cold), snapshotted
	// on drain, then re-served on boot B from the restored cache.
	SnapshotRequests     int     `json:"snapshot_requests"`
	RestoredHits         int     `json:"restored_hits"`
	RestoredHitRate      float64 `json:"restored_hit_rate"`
	ColdSolveSeconds     float64 `json:"cold_solve_seconds"`     // mean per request, first boot
	RestoredServeSeconds float64 `json:"restored_serve_seconds"` // mean per request, restored boot
	SnapshotSpeedup      float64 `json:"snapshot_serve_speedup"` // cold / restored
	RestoredWarmSeeds    int     `json:"restored_warm_seeds"`    // warm-seed index entries surviving the restart

	// Checkpoint leg: the crash image's incumbent vs the resumed and cold
	// solves of the same request.
	CheckpointP        int     `json:"checkpoint_p"`
	CheckpointH        float64 `json:"checkpoint_h"`
	CheckpointMoves    int     `json:"checkpoint_moves"`
	ColdP              int     `json:"cold_p"`
	ColdH              float64 `json:"cold_h"`
	ColdMoves          int     `json:"cold_moves"`
	ResumedP           int     `json:"resumed_p"`
	ResumedH           float64 `json:"resumed_h"`
	ResumedMoves       int     `json:"resumed_moves"`
	MovesSavedPct      float64 `json:"resume_moves_saved_pct"`
	WarmFromCheckpoint bool    `json:"warm_from_checkpoint"`
	ResumedNeverWorse  bool    `json:"resumed_never_worse"`
}

// recoveryAwaitReady polls until boot recovery finishes.
func recoveryAwaitReady(sv *server.Service) error {
	deadline := time.Now().Add(2 * time.Minute)
	for sv.Recovering() {
		if time.Now().After(deadline) {
			return fmt.Errorf("recoverybench: boot recovery never finished")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// recoverySolve times one sync solve through the handler.
func recoverySolve(h http.Handler, body string) (float64, error) {
	start := time.Now()
	rec, err := jobsDo(h, http.MethodPost, "/v1/solve", body)
	if err != nil {
		return 0, err
	}
	if rec.status != http.StatusOK {
		return 0, fmt.Errorf("recoverybench: solve status %d: %s", rec.status, rec.body.String())
	}
	return time.Since(start).Seconds(), nil
}

// recoveryWarmSeeds reads the warm-seed index size off /v1/debug/cache's
// durable section.
func recoveryWarmSeeds(h http.Handler) (int, error) {
	rec, err := jobsDo(h, http.MethodGet, "/v1/debug/cache", "")
	if err != nil {
		return 0, err
	}
	if rec.status != http.StatusOK {
		return 0, fmt.Errorf("recoverybench: debug cache status %d", rec.status)
	}
	var out struct {
		Durable struct {
			WarmSeeds int `json:"warm_seeds"`
		} `json:"durable"`
	}
	if err := json.Unmarshal(rec.body.Bytes(), &out); err != nil {
		return 0, err
	}
	return out.Durable.WarmSeeds, nil
}

// RecoveryBench measures the durable-state layer on in-process services
// sharing real state directories.
func RecoveryBench(cfg Config) (*RecoveryBenchResult, error) {
	cfg = cfg.withDefaults()
	out := &RecoveryBenchResult{Dataset: "2k", Scale: cfg.Scale, Seed: cfg.Seed}

	// ---- Snapshot leg -----------------------------------------------------
	floors := []int{25000, 26000, 27000}
	out.SnapshotRequests = len(floors)
	snapDir, err := os.MkdirTemp("", "emp-recoverybench-snap-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(snapDir)

	svA := server.New(server.Config{Registry: obs.New(), StateDir: snapDir})
	hA := svA.Handler()
	if err := recoveryAwaitReady(svA); err != nil {
		return nil, err
	}
	// One finished job donates a warm seed to the snapshot alongside the
	// sync results.
	if _, err := jobsRun(hA, jobsBody(cfg.Scale, cfg.Seed, floors[0])); err != nil {
		return nil, err
	}
	var coldTotal float64
	for _, f := range floors {
		sec, err := recoverySolve(hA, jobsBody(cfg.Scale, cfg.Seed, f))
		if err != nil {
			return nil, err
		}
		coldTotal += sec
	}
	// floors[0] was pre-cached by the job above, so its sync "solve" was a
	// hit; time the cold cost over the genuinely cold requests only.
	out.ColdSolveSeconds = coldTotal / float64(len(floors))
	if err := svA.Close(); err != nil { // drain snapshot
		return nil, err
	}

	regB := obs.New()
	svB := server.New(server.Config{Registry: regB, StateDir: snapDir})
	hB := svB.Handler()
	if err := recoveryAwaitReady(svB); err != nil {
		return nil, err
	}
	hits0 := regB.Counter("emp_result_cache_hits_total", "").Value()
	var restoredTotal float64
	for _, f := range floors {
		sec, err := recoverySolve(hB, jobsBody(cfg.Scale, cfg.Seed, f))
		if err != nil {
			return nil, err
		}
		restoredTotal += sec
	}
	out.RestoredHits = int(regB.Counter("emp_result_cache_hits_total", "").Value() - hits0)
	out.RestoredHitRate = float64(out.RestoredHits) / float64(out.SnapshotRequests)
	out.RestoredServeSeconds = restoredTotal / float64(len(floors))
	if out.RestoredServeSeconds > 0 {
		out.SnapshotSpeedup = out.ColdSolveSeconds / out.RestoredServeSeconds
	}
	out.RestoredWarmSeeds, err = recoveryWarmSeeds(hB)
	if err != nil {
		return nil, err
	}
	if err := svB.Close(); err != nil {
		return nil, err
	}

	// ---- Checkpoint leg ---------------------------------------------------
	// Cold control: the same request solved from scratch.
	body := jobsBody(cfg.Scale, cfg.Seed, 24500)
	coldH := server.NewHandler(server.Config{Registry: obs.New()})
	cold, err := jobsRun(coldH, body)
	if err != nil {
		return nil, err
	}
	if cold.Result == nil {
		return nil, fmt.Errorf("recoverybench: cold control missing result")
	}
	out.ColdP, out.ColdH, out.ColdMoves = cold.Result.P, cold.Result.HeteroAfter, cold.Result.TabuMoves

	// Crash image: run the job on a durable server with per-epoch delays (so
	// mid-search checkpoints are catchable), and copy the journal + newest
	// checkpoint the moment one with tabu progress exists. The copied bytes
	// are exactly what a kill -9 at that instant would have left on disk.
	crashSrc, err := os.MkdirTemp("", "emp-recoverybench-crash-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(crashSrc)
	svC := server.New(server.Config{
		Registry:           obs.New(),
		StateDir:           crashSrc,
		CheckpointInterval: time.Millisecond,
		SnapshotInterval:   -1,
	})
	hC := svC.Handler()
	if err := recoveryAwaitReady(svC); err != nil {
		return nil, err
	}
	fault.Enable(&fault.Plan{Rules: []fault.Rule{
		{Site: "tabu.epoch", Kind: fault.KindDelay, Delay: time.Millisecond, Times: 1 << 30},
	}})
	defer fault.Enable(nil)
	sub, err := jobsSubmit(hC, body)
	if err != nil {
		return nil, err
	}
	// Shadow the on-disk state while the job runs: every time the checkpoint
	// deepens, copy (checkpoint, journal) into memory. The newest pair
	// captured before the terminal transition is exactly what a kill -9 just
	// before convergence would have left on disk — the deepest incumbent the
	// durable layer can resume from.
	type crashPair struct{ journal, ckpt []byte }
	var pairs []crashPair // newest last; keep two in case the last capture raced the finish
	srcCkpt := filepath.Join(crashSrc, "checkpoints")
	lastMoves := -1
	deadline := time.Now().Add(3 * time.Minute)
	for {
		st, err := jobsDo(hC, http.MethodGet, "/v1/jobs/"+sub.ID, "")
		if err != nil {
			return nil, err
		}
		var view server.JobStatus
		if err := json.Unmarshal(st.body.Bytes(), &view); err != nil {
			return nil, err
		}
		if ck, ok := durable.ReadCheckpoint(srcCkpt, sub.ID, durable.Metrics{}); ok && ck.Moves > lastMoves {
			// Checkpoint first, journal second: a checkpoint alongside a
			// still-pending journal is exactly the crash invariant. Reads
			// racing the terminal cleanup just skip this capture.
			c, cerr := os.ReadFile(durable.CheckpointPath(srcCkpt, sub.ID))
			j, jerr := os.ReadFile(filepath.Join(crashSrc, "jobs.journal"))
			if cerr == nil && jerr == nil {
				pairs = append(pairs, crashPair{journal: j, ckpt: c})
				if len(pairs) > 2 {
					pairs = pairs[1:]
				}
				lastMoves = ck.Moves
			}
		}
		if view.State == "done" || view.State == "failed" || view.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("recoverybench: crash-image job never finished")
		}
		time.Sleep(time.Millisecond)
	}
	fault.Enable(nil)
	svC.Close()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("recoverybench: no mid-search checkpoint captured")
	}

	// Materialize the newest pair whose journal still carries the job as
	// pending (a capture can race the final state append; the older pair is
	// then the valid crash image).
	crashDir, err := os.MkdirTemp("", "emp-recoverybench-resume-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(crashDir)
	var ck durable.Checkpoint
	valid := false
	for i := len(pairs) - 1; i >= 0 && !valid; i-- {
		if err := os.RemoveAll(crashDir); err != nil {
			return nil, err
		}
		if err := os.MkdirAll(filepath.Join(crashDir, "checkpoints"), 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(crashDir, "jobs.journal"), pairs[i].journal, 0o600); err != nil {
			return nil, err
		}
		if err := os.WriteFile(durable.CheckpointPath(filepath.Join(crashDir, "checkpoints"), sub.ID), pairs[i].ckpt, 0o644); err != nil {
			return nil, err
		}
		jr, replay, err := durable.Open(filepath.Join(crashDir, "jobs.journal"), durable.Metrics{})
		if err != nil {
			return nil, err
		}
		jr.Close()
		var ok bool
		ck, ok = durable.ReadCheckpoint(filepath.Join(crashDir, "checkpoints"), sub.ID, durable.Metrics{})
		valid = ok && len(durable.Pending(replay.Records)) > 0
	}
	if !valid {
		return nil, fmt.Errorf("recoverybench: no captured crash image has the job still pending")
	}
	out.CheckpointP, out.CheckpointH, out.CheckpointMoves = ck.P, ck.H, ck.Moves

	svD := server.New(server.Config{Registry: obs.New(), StateDir: crashDir})
	hD := svD.Handler()
	if err := recoveryAwaitReady(svD); err != nil {
		return nil, err
	}
	resumed, err := jobsAwait(hD, sub.ID)
	if err != nil {
		return nil, err
	}
	if resumed.Result == nil {
		return nil, fmt.Errorf("recoverybench: resumed job missing result")
	}
	out.ResumedP, out.ResumedH, out.ResumedMoves = resumed.Result.P, resumed.Result.HeteroAfter, resumed.Result.TabuMoves
	out.WarmFromCheckpoint = resumed.WarmFrom == "checkpoint"
	out.ResumedNeverWorse = out.ResumedP > out.CheckpointP ||
		(out.ResumedP == out.CheckpointP && out.ResumedH <= out.CheckpointH+1e-9)
	if out.ColdMoves > 0 {
		out.MovesSavedPct = 100 * (1 - float64(out.ResumedMoves)/float64(out.ColdMoves))
	}
	if err := svD.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRecoveryBench runs RecoveryBench and writes the JSON artifact.
func WriteRecoveryBench(cfg Config, path string) (*RecoveryBenchResult, error) {
	res, err := RecoveryBench(cfg)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("recoverybench: %w", err)
	}
	return res, nil
}
