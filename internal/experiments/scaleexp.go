package experiments

import (
	"fmt"
	"time"

	"emp/internal/constraint"
	"emp/internal/data"
	"emp/internal/exact"
	"emp/internal/geom"
)

// scaleSweep runs the given combos over the named datasets, reporting p and
// the construction/tabu split per dataset.
func scaleSweep(cfg Config, id, title string, names []string, combos map[string]func(Config) constraint.Set) ([]Table, error) {
	cfg = cfg.withDefaults()
	order := []string{"M", "A", "MS", "MA", "AS", "MAS"}
	pTab := Table{ID: id, Title: title + " — p values", Header: []string{"combo"}}
	tTab := Table{ID: id, Title: title + " — runtime (construction / tabu)", Header: []string{"combo"}}
	datasets := make([]*data.Dataset, 0, len(names))
	for _, name := range names {
		ds, err := dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		datasets = append(datasets, ds)
		pTab.Header = append(pTab.Header, fmt.Sprintf("%s(n=%d)", name, ds.N()))
		tTab.Header = append(tTab.Header, fmt.Sprintf("%s(n=%d)", name, ds.N()))
	}
	for _, combo := range order {
		build, ok := combos[combo]
		if !ok {
			continue
		}
		pRow, tRow := []string{combo}, []string{combo}
		for _, ds := range datasets {
			r, err := run(cfg, ds, build(cfg))
			if err != nil {
				return nil, err
			}
			if r.Infeasible {
				pRow = append(pRow, "inf.")
				tRow = append(tRow, "-")
				continue
			}
			pRow = append(pRow, fmt.Sprintf("%d", r.P))
			tRow = append(tRow, fmt.Sprintf("%s/%s", secs(r.ConstructionSec), secs(r.TabuSec)))
		}
		pTab.Rows = append(pTab.Rows, pRow)
		tTab.Rows = append(tTab.Rows, tRow)
	}
	pTab.Notes = []string{fmt.Sprintf("scale %g; default Table II constraints", cfg.Scale)}
	return []Table{pTab, tTab}, nil
}

// defaultCombos are the scalability-combination builders with the Table II
// default threshold ranges.
func defaultCombos() map[string]func(Config) constraint.Set {
	return map[string]func(Config) constraint.Set{
		"M":   func(Config) constraint.Set { return constraint.Set{defaultMin()} },
		"MS":  func(Config) constraint.Set { return constraint.Set{defaultMin(), defaultSum()} },
		"MA":  func(Config) constraint.Set { return constraint.Set{defaultMin(), defaultAvg()} },
		"MAS": func(Config) constraint.Set { return constraint.Set{defaultMin(), defaultAvg(), defaultSum()} },
	}
}

// Fig14ScaleSmall reproduces Figure 14: runtime on the 1k-4k datasets (the
// 8k single-state dataset is included for continuity with Fig. 15).
func Fig14ScaleSmall(cfg Config) ([]Table, error) {
	return scaleSweep(cfg, "fig14", "Fig. 14: scalability 1k-8k", []string{"1k", "2k", "4k", "8k"}, defaultCombos())
}

// Fig15ScaleLarge reproduces Figure 15: runtime on the 10k-50k multi-state
// datasets.
func Fig15ScaleLarge(cfg Config) ([]Table, error) {
	return scaleSweep(cfg, "fig15", "Fig. 15: scalability 10k-50k", []string{"10k", "20k", "30k", "40k", "50k"}, defaultCombos())
}

// Fig16AvgHardScale reproduces Figure 16: scalability with the hard AVG
// range 3k±1k across datasets.
func Fig16AvgHardScale(cfg Config) ([]Table, error) {
	hard := func(Config) constraint.Set {
		return constraint.Set{avgRange(2000, 4000)}
	}
	combos := map[string]func(Config) constraint.Set{
		"A":  hard,
		"MA": func(c Config) constraint.Set { return append(constraint.Set{defaultMin()}, hard(c)...) },
		"AS": func(c Config) constraint.Set { return append(hard(c), defaultSum()) },
		"MAS": func(c Config) constraint.Set {
			return append(append(constraint.Set{defaultMin()}, hard(c)...), defaultSum())
		},
	}
	return scaleSweep(cfg, "fig16", "Fig. 16: scalability with AVG range 3k±1k", []string{"1k", "2k", "4k", "8k"}, combos)
}

// MIPBlowup reproduces the Section I anecdote: exact (MIP-style) solving is
// intractable beyond a handful of areas. It times the exhaustive solver on
// growing grid instances; the paper's Gurobi runs took 33.86 s at 9 areas
// and found nothing for 25 areas in 110 hours.
func MIPBlowup(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "mip",
		Title:  "Exact-solver blow-up (stand-in for the Gurobi MIP anecdote)",
		Header: []string{"areas", "explored", "time", "p*"},
	}
	for _, side := range []struct{ cols, rows int }{{2, 2}, {3, 2}, {4, 2}, {3, 3}, {5, 2}} {
		n := side.cols * side.rows
		polys := geom.Lattice(geom.LatticeOptions{Cols: side.cols, Rows: side.rows})
		ds := data.FromPolygons(fmt.Sprintf("grid%d", n), polys, geom.Rook)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(1 + (i*7)%5)
		}
		if err := ds.AddColumn("s", vals); err != nil {
			return nil, err
		}
		ds.Dissimilarity = "s"
		set := constraint.Set{constraint.AtLeast(constraint.Sum, "s", 5)}
		start := time.Now()
		res, err := exact.Solve(ds, set, exact.Options{})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Explored),
			time.Since(start).String(),
			fmt.Sprintf("%d", res.P),
		})
	}
	t.Notes = []string{"paper: Gurobi needed 33.86s for 9 areas and failed on 25 areas after 110 hours"}
	return []Table{t}, nil
}
