// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section VII) on the synthetic census substrate.
//
// Each experiment is a named runner producing one or more text Tables; the
// cmd/empbench binary dispatches on the names and EXPERIMENTS.md records the
// measured shapes against the paper's. Dataset sizes are scaled by
// Config.Scale (default 0.25) so the full suite stays tractable on small
// machines; pass Scale=1 for the paper's full sizes.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"emp/internal/census"
	"emp/internal/constraint"
	"emp/internal/data"
	"emp/internal/fact"
	"emp/internal/maxp"
)

// Config parameterizes a run.
type Config struct {
	// Scale shrinks the named datasets (0 < Scale <= 1; 0 means 0.25).
	Scale float64
	// Seed drives dataset synthesis and solver randomness.
	Seed int64
	// Iterations is the FaCT construction-iteration count (0 = 1).
	Iterations int
	// SkipTabu disables the local-search phase to isolate construction
	// costs.
	SkipTabu bool
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Table is a rendered experiment artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func(Config) ([]Table, error)

// Registry maps experiment ids (table/figure numbers) to runners.
var Registry = map[string]Runner{
	"table1":   Table1Datasets,
	"table3":   Table3MinCombos,
	"table4":   Table4SumCombos,
	"fig5":     Fig5MinUpperBound,
	"fig6":     Fig6MinLowerBound,
	"fig7":     Fig7MinBounded,
	"fig8":     Fig8Histogram,
	"fig9":     Fig9AvgMidpoints,
	"fig10":    Fig10AvgLengths,
	"fig11":    Fig11AvgRuntime,
	"fig12":    Fig12SumVsMaxP,
	"fig13":    Fig13SumBounded,
	"fig14":    Fig14ScaleSmall,
	"fig15":    Fig15ScaleLarge,
	"fig16":    Fig16AvgHardScale,
	"mip":      MIPBlowup,
	"ablation": Ablations,
}

// Names returns the experiment ids in presentation order.
func Names() []string {
	return []string{
		"table1", "table3", "table4",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "mip", "ablation",
	}
}

// Default constraints (paper Table II).
func defaultMin() constraint.Constraint {
	return constraint.AtMost(constraint.Min, census.AttrPop16Up, 3000)
}
func defaultAvg() constraint.Constraint {
	return constraint.New(constraint.Avg, census.AttrEmployed, 1500, 3500)
}
func defaultSum() constraint.Constraint {
	return constraint.AtLeast(constraint.Sum, census.AttrTotalPop, 20000)
}

// dataset returns the named dataset at the configured scale.
func dataset(cfg Config, name string) (*data.Dataset, error) {
	if cfg.Scale >= 1 {
		return census.NamedSeeded(name, cfg.Seed)
	}
	return census.Scaled(name, cfg.Scale, cfg.Seed)
}

// run measures one FaCT query.
type runResult struct {
	P, Unassigned            int
	ConstructionSec, TabuSec float64
	HeteroImprovePct         float64
	Infeasible               bool
}

func run(cfg Config, ds *data.Dataset, set constraint.Set) (runResult, error) {
	res, err := fact.Solve(ds, set, fact.Config{
		Iterations:      cfg.Iterations,
		Seed:            cfg.Seed,
		SkipLocalSearch: cfg.SkipTabu,
	})
	if err != nil {
		if res != nil && !res.Feasibility.Feasible {
			return runResult{Infeasible: true}, nil
		}
		return runResult{}, err
	}
	return runResult{
		P:                res.P,
		Unassigned:       res.Unassigned,
		ConstructionSec:  res.ConstructionTime.Seconds(),
		TabuSec:          res.LocalSearchTime.Seconds(),
		HeteroImprovePct: res.HeteroImprovement() * 100,
	}, nil
}

func runMaxP(cfg Config, ds *data.Dataset, threshold float64) (runResult, error) {
	res, err := maxp.Solve(ds, census.AttrTotalPop, threshold, maxp.Config{
		Seed:            cfg.Seed,
		SkipLocalSearch: cfg.SkipTabu,
	})
	if err != nil {
		return runResult{}, err
	}
	return runResult{
		P:                res.P,
		Unassigned:       res.Unassigned,
		ConstructionSec:  res.ConstructionTime.Seconds(),
		TabuSec:          res.LocalSearchTime.Seconds(),
		HeteroImprovePct: res.HeteroImprovement() * 100,
	}, nil
}

// rangeLabel formats a threshold range the way the paper's tables do.
func rangeLabel(l, u float64) string {
	f := func(v float64) string {
		if v == math.Trunc(v) && math.Abs(v) >= 1000 && math.Mod(v, 100) == 0 {
			return fmt.Sprintf("%gk", v/1000)
		}
		return fmt.Sprintf("%g", v)
	}
	switch {
	case math.IsInf(l, -1) && math.IsInf(u, 1):
		return "(-inf,inf)"
	case math.IsInf(l, -1):
		return fmt.Sprintf("(-inf,%s]", f(u))
	case math.IsInf(u, 1):
		return fmt.Sprintf("[%s,inf)", f(l))
	default:
		return fmt.Sprintf("[%s,%s]", f(l), f(u))
	}
}

func secs(v float64) string { return fmt.Sprintf("%.3fs", v) }

// Table1Datasets regenerates Table I: the dataset inventory, with synthesis
// time and component counts.
func Table1Datasets(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "table1",
		Title:  "Evaluation datasets (synthetic census substrate)",
		Header: []string{"name", "areas(paper)", "areas(run)", "states", "components", "gen_time"},
	}
	for _, name := range census.PaperSizeNames() {
		sz := census.Sizes[name]
		start := time.Now()
		ds, err := dataset(cfg, name)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", sz.Areas),
			fmt.Sprintf("%d", ds.N()),
			fmt.Sprintf("%d", sz.States),
			fmt.Sprintf("%d", ds.Components()),
			time.Since(start).Truncate(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("scale=%g; paper sizes reproduced exactly at scale=1", cfg.Scale))
	return []Table{t}, nil
}
