package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"emp/internal/obs"
	"emp/internal/server"
)

// ServeBenchResult is the JSON artifact written by `empbench -benchserve`:
// POST /solve throughput through the serving subsystem's three regimes.
// Cold requests each generate their dataset and run a full solve; hot
// requests replay one request against a warm result cache; the dedup leg
// fires identical concurrent requests at a fresh fingerprint so all but one
// join the in-flight solve. HotColdSpeedup is the headline number — the
// serving-layer win for repeated queries (dashboards re-asking the same
// regionalization), expected to be orders of magnitude.
type ServeBenchResult struct {
	Dataset         string  `json:"dataset"`
	Scale           float64 `json:"scale"`
	Seed            int64   `json:"seed"`
	ColdRequests    int     `json:"cold_requests"`
	ColdSeconds     float64 `json:"cold_seconds"`
	ColdPerSec      float64 `json:"cold_per_sec"`
	HotRequests     int     `json:"hot_requests"`
	HotSeconds      float64 `json:"hot_seconds"`
	HotPerSec       float64 `json:"hot_per_sec"`
	DedupConcurrent int     `json:"dedup_concurrent"`
	DedupSeconds    float64 `json:"dedup_seconds"`
	DedupPerSec     float64 `json:"dedup_per_sec"`
	DedupJoined     int64   `json:"dedup_joined"`
	HotColdSpeedup  float64 `json:"hot_cold_speedup"`
}

// benchRecorder is a minimal in-process http.ResponseWriter; the benchmark
// drives the handler directly so it measures the serving subsystem, not a
// TCP stack.
type benchRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBenchRecorder() *benchRecorder {
	return &benchRecorder{header: make(http.Header)}
}

func (r *benchRecorder) Header() http.Header { return r.header }

func (r *benchRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *benchRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(b)
}

// solveBody renders a /solve request body for the bench dataset. Scale >= 1
// means the full dataset (the scale field is omitted: the API rejects
// explicit scales outside (0,1)).
func solveBody(scale float64, seed int64, iterations int) string {
	scaleField := ""
	if scale > 0 && scale < 1 {
		scaleField = fmt.Sprintf(`"scale":%g,`, scale)
	}
	return fmt.Sprintf(`{"named":"2k",%s"constraints":"SUM(TOTALPOP) >= 25000",
		"options":{"seed":%d,"iterations":%d}}`, scaleField, seed, iterations)
}

// post fires one request through the handler and fails on a non-200.
func post(h http.Handler, body string) error {
	req, err := http.NewRequest(http.MethodPost, "/solve", strings.NewReader(body))
	if err != nil {
		return err
	}
	rec := newBenchRecorder()
	h.ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		return fmt.Errorf("servebench: status %d: %s", rec.status, rec.body.String())
	}
	return nil
}

// ServeBench measures the serving subsystem end to end on an in-process
// handler with a private registry (so the dedup leg can read its own
// counters). Legs share the handler: the cold leg warms the dataset and
// result caches that the hot leg then exploits, exactly as in production.
func ServeBench(cfg Config) (*ServeBenchResult, error) {
	cfg = cfg.withDefaults()
	reg := obs.New()
	h := server.NewHandler(server.Config{Registry: reg})

	const (
		coldN      = 3
		hotN       = 200
		dedupN     = 8
		iterations = 2
	)

	// Cold: distinct seeds, so every request generates its dataset and
	// solves from scratch.
	coldStart := time.Now()
	for i := 0; i < coldN; i++ {
		if err := post(h, solveBody(cfg.Scale, cfg.Seed+int64(i), iterations)); err != nil {
			return nil, err
		}
	}
	coldDur := time.Since(coldStart)

	// Hot: replay the first cold request against the warm result cache.
	hotBody := solveBody(cfg.Scale, cfg.Seed, iterations)
	hotStart := time.Now()
	for i := 0; i < hotN; i++ {
		if err := post(h, hotBody); err != nil {
			return nil, err
		}
	}
	hotDur := time.Since(hotStart)

	// Dedup: a fresh fingerprint (different iteration count) hit by dedupN
	// concurrent identical requests; all but the leader join its flight or
	// land on the result it cached.
	dedupBody := solveBody(cfg.Scale, cfg.Seed, iterations+1)
	errs := make([]error, dedupN)
	var wg sync.WaitGroup
	dedupStart := time.Now()
	for i := 0; i < dedupN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = post(h, dedupBody)
		}(i)
	}
	wg.Wait()
	dedupDur := time.Since(dedupStart)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &ServeBenchResult{
		Dataset:         "2k",
		Scale:           cfg.Scale,
		Seed:            cfg.Seed,
		ColdRequests:    coldN,
		ColdSeconds:     coldDur.Seconds(),
		ColdPerSec:      float64(coldN) / coldDur.Seconds(),
		HotRequests:     hotN,
		HotSeconds:      hotDur.Seconds(),
		HotPerSec:       float64(hotN) / hotDur.Seconds(),
		DedupConcurrent: dedupN,
		DedupSeconds:    dedupDur.Seconds(),
		DedupPerSec:     float64(dedupN) / dedupDur.Seconds(),
		DedupJoined:     reg.Counter("emp_solve_dedup_total", "").Value(),
	}
	if out.ColdPerSec > 0 {
		out.HotColdSpeedup = out.HotPerSec / out.ColdPerSec
	}
	return out, nil
}

// WriteServeBench runs ServeBench and writes the JSON artifact.
func WriteServeBench(cfg Config, path string) (*ServeBenchResult, error) {
	res, err := ServeBench(cfg)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("servebench: %w", err)
	}
	return res, nil
}
