package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"emp/internal/census"
	"emp/internal/maxp"
	"emp/internal/region"
	"emp/internal/tabu"
)

// TabuBenchResult is the JSON artifact written by `empbench -benchtabu`:
// one full Tabu local-search run on the 8k dataset with the incremental
// heterogeneity kernel off ("before") and on ("after").
type TabuBenchResult struct {
	Dataset       string  `json:"dataset"`
	Areas         int     `json:"areas"`
	Regions       int     `json:"regions"`
	Scale         float64 `json:"scale"`
	Seed          int64   `json:"seed"`
	MovesBefore   int     `json:"moves_before"`
	MovesAfter    int     `json:"moves_after"`
	SecondsBefore float64 `json:"seconds_before"`
	SecondsAfter  float64 `json:"seconds_after"`
	NsPerOpBefore float64 `json:"ns_per_op_before"`
	NsPerOpAfter  float64 `json:"ns_per_op_after"`
	Speedup       float64 `json:"speedup"`
	HeteroBefore  float64 `json:"hetero_naive"`
	HeteroAfter   float64 `json:"hetero_kernel"`
}

// TabuBench measures the local-search hot path on the census 8k dataset
// (scaled by cfg.Scale). The start partition comes from the max-p
// construction phase; the identical clone is then improved twice — naive
// heterogeneity fallback vs the Fenwick kernel — and the wall times
// compared. ns_per_op is nanoseconds per full Improve invocation, the same
// unit testing.B reports for BenchmarkTabuImprove8k.
func TabuBench(cfg Config) (*TabuBenchResult, error) {
	cfg = cfg.withDefaults()
	ds, err := dataset(cfg, "8k")
	if err != nil {
		return nil, err
	}
	// Threshold chosen so max-p lands at a few dozen regions: large enough
	// regions that the kernel's O(log n) vs O(|R|) gap dominates.
	var total float64
	for _, v := range ds.Column(census.AttrTotalPop) {
		total += v
	}
	res, err := maxp.Solve(ds, census.AttrTotalPop, total/40, maxp.Config{
		Seed:            cfg.Seed,
		SkipLocalSearch: true,
	})
	if err != nil {
		return nil, err
	}
	base := res.Partition

	improve := func(kernel, fallback bool) (time.Duration, tabu.Stats, *region.Partition) {
		p := base.Clone()
		p.SetHeteroKernel(kernel)
		start := time.Now()
		st := tabu.Improve(p, tabu.Config{Tenure: 10, MaxNoImprove: 30, Fallback: fallback})
		return time.Since(start), st, p
	}
	durNaive, statsNaive, pNaive := improve(false, true)
	durKernel, statsKernel, pKernel := improve(true, false)

	out := &TabuBenchResult{
		Dataset:       "8k",
		Areas:         ds.N(),
		Regions:       base.NumRegions(),
		Scale:         cfg.Scale,
		Seed:          cfg.Seed,
		MovesBefore:   statsNaive.Moves,
		MovesAfter:    statsKernel.Moves,
		SecondsBefore: durNaive.Seconds(),
		SecondsAfter:  durKernel.Seconds(),
		NsPerOpBefore: float64(durNaive.Nanoseconds()),
		NsPerOpAfter:  float64(durKernel.Nanoseconds()),
		HeteroBefore:  pNaive.Heterogeneity(),
		HeteroAfter:   pKernel.Heterogeneity(),
	}
	if durKernel > 0 {
		out.Speedup = durNaive.Seconds() / durKernel.Seconds()
	}
	return out, nil
}

// WriteTabuBench runs TabuBench and writes the JSON artifact.
func WriteTabuBench(cfg Config, path string) (*TabuBenchResult, error) {
	res, err := TabuBench(cfg)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("tabubench: %w", err)
	}
	return res, nil
}
