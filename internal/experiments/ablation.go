package experiments

import (
	"fmt"

	"emp/internal/azp"
	"emp/internal/constraint"
	"emp/internal/fact"
	"emp/internal/skater"
	"emp/internal/tabu"
)

// Ablations runs the design-choice studies DESIGN.md calls out, beyond the
// paper's own artifacts: merge limit, construction iterations and
// parallelism, local-search algorithm, area pickup order, and a quality
// comparison against the SKATER tree-partition baseline at the same k.
func Ablations(cfg Config) ([]Table, error) {
	cfg = cfg.withDefaults()
	ds, err := dataset(cfg, "2k")
	if err != nil {
		return nil, err
	}
	defaults := constraint.Set{defaultMin(), defaultAvg(), defaultSum()}
	hardAvg := constraint.Set{avgRange(2000, 4000)}
	var tables []Table

	// Merge limit on the hard AVG range (drives round-2 merges).
	ml := Table{
		ID:     "ablation",
		Title:  "Ablation: AVG merge limit (range 3k±1k)",
		Header: []string{"merge_limit", "p", "unassigned", "construction"},
	}
	for _, limit := range []int{1, 3, 6, 12} {
		res, err := fact.Solve(ds, hardAvg, fact.Config{MergeLimit: limit, Seed: cfg.Seed, SkipLocalSearch: true})
		if err != nil {
			return nil, err
		}
		ml.Rows = append(ml.Rows, []string{
			fmt.Sprintf("%d", limit), fmt.Sprintf("%d", res.P),
			fmt.Sprintf("%d", res.Unassigned), secs(res.ConstructionTime.Seconds()),
		})
	}
	tables = append(tables, ml)

	// Construction iterations and parallelism.
	it := Table{
		ID:     "ablation",
		Title:  "Ablation: construction iterations (best p kept) and parallelism",
		Header: []string{"iterations", "workers", "p", "construction"},
	}
	for _, row := range []struct{ iters, workers int }{{1, 1}, {3, 1}, {3, 3}, {5, 1}} {
		res, err := fact.Solve(ds, defaults, fact.Config{
			Iterations: row.iters, Parallelism: row.workers, Seed: cfg.Seed, SkipLocalSearch: true,
		})
		if err != nil {
			return nil, err
		}
		it.Rows = append(it.Rows, []string{
			fmt.Sprintf("%d", row.iters), fmt.Sprintf("%d", row.workers),
			fmt.Sprintf("%d", res.P), secs(res.ConstructionTime.Seconds()),
		})
	}
	tables = append(tables, it)

	// Local-search algorithm and objective.
	ls := Table{
		ID:     "ablation",
		Title:  "Ablation: local-search algorithm and objective",
		Header: []string{"algorithm", "objective", "hetero_improve", "moves", "time"},
	}
	variants := []struct {
		name, objName string
		cfg           fact.Config
	}{
		{"tabu", "heterogeneity", fact.Config{Seed: cfg.Seed}},
		{"anneal", "heterogeneity", fact.Config{Seed: cfg.Seed, LocalSearch: fact.LocalSearchAnneal}},
		{"tabu", "compactness", fact.Config{Seed: cfg.Seed, Objective: tabu.NewCompactness(ds.Polygons)}},
	}
	for _, v := range variants {
		res, err := fact.Solve(ds, defaults, v.cfg)
		if err != nil {
			return nil, err
		}
		ls.Rows = append(ls.Rows, []string{
			v.name, v.objName,
			fmt.Sprintf("%.1f%%", res.HeteroImprovement()*100),
			fmt.Sprintf("%d", res.TabuMoves),
			secs(res.LocalSearchTime.Seconds()),
		})
	}
	tables = append(tables, ls)

	// Area pickup order.
	ord := Table{
		ID:     "ablation",
		Title:  "Ablation: area pickup order",
		Header: []string{"order", "p", "unassigned"},
	}
	for _, o := range []fact.Order{fact.OrderRandom, fact.OrderAscending, fact.OrderDescending} {
		res, err := fact.Solve(ds, defaults, fact.Config{Order: o, Seed: cfg.Seed, SkipLocalSearch: true})
		if err != nil {
			return nil, err
		}
		ord.Rows = append(ord.Rows, []string{o.String(), fmt.Sprintf("%d", res.P), fmt.Sprintf("%d", res.Unassigned)})
	}
	tables = append(tables, ord)

	// SKATER quality comparison at FaCT's p (single SUM constraint so the
	// comparison is as fair as SKATER's constraint-free model allows).
	sumOnly := constraint.Set{defaultSum()}
	fr, err := fact.Solve(ds, sumOnly, fact.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	sk := Table{
		ID:     "ablation",
		Title:  "Baseline: SKATER tree partition at FaCT's p (SUM-only query)",
		Header: []string{"method", "k", "heterogeneity", "note"},
	}
	sk.Rows = append(sk.Rows, []string{"FaCT", fmt.Sprintf("%d", fr.P), fmt.Sprintf("%.4g", fr.HeteroAfter), "satisfies SUM >= 20k"})
	if fr.P >= ds.Components() && fr.P >= 1 {
		sres, err := skater.Solve(ds, fr.P)
		if err != nil {
			return nil, err
		}
		h := skaterHeterogeneity(ds, sres)
		sk.Rows = append(sk.Rows, []string{"SKATER", fmt.Sprintf("%d", sres.K), fmt.Sprintf("%.4g", h), "ignores constraints"})
		ares, err := azp.Solve(ds, fr.P, azp.Config{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		sk.Rows = append(sk.Rows, []string{"AZP-Tabu", fmt.Sprintf("%d", ares.K), fmt.Sprintf("%.4g", ares.Objective), "ignores constraints"})
	}
	tables = append(tables, sk)
	return tables, nil
}

// skaterHeterogeneity evaluates H(P) (the paper's pairwise measure) on a
// SKATER assignment for comparability with FaCT.
func skaterHeterogeneity(ds interface {
	DissimilarityColumn() ([]float64, error)
}, res *skater.Result) float64 {
	dis, err := ds.DissimilarityColumn()
	if err != nil {
		return 0
	}
	groups := make(map[int][]int)
	for a, c := range res.Assignment {
		groups[c] = append(groups[c], a)
	}
	var h float64
	for _, members := range groups {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				d := dis[members[i]] - dis[members[j]]
				if d < 0 {
					d = -d
				}
				h += d
			}
		}
	}
	return h
}
