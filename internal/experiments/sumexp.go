package experiments

import (
	"fmt"
	"math"

	"emp/internal/census"
	"emp/internal/constraint"
)

// sumCombos are the Section VII-B3 combinations: the MP-regions baseline
// (MP, only valid with u = inf), a varying SUM constraint alone (S), and
// the SUM constraint with the default MIN (MS), AVG (AS), and both (MAS).
var sumComboNames = []string{"MP", "S", "MS", "AS", "MAS"}

func sumCombo(name string, c constraint.Constraint) constraint.Set {
	switch name {
	case "S":
		return constraint.Set{c}
	case "MS":
		return constraint.Set{defaultMin(), c}
	case "AS":
		return constraint.Set{defaultAvg(), c}
	case "MAS":
		return constraint.Set{defaultMin(), defaultAvg(), c}
	default:
		panic("unknown SUM combo " + name)
	}
}

func sumRange(l, u float64) constraint.Constraint {
	return constraint.New(constraint.Sum, census.AttrTotalPop, l, u)
}

// sumSweep runs all combos over the given SUM ranges; the MP baseline runs
// only for open-upper ranges (the classic max-p setting).
func sumSweep(cfg Config, id, title string, ranges []constraint.Constraint) ([]Table, error) {
	cfg = cfg.withDefaults()
	ds, err := dataset(cfg, "2k")
	if err != nil {
		return nil, err
	}
	pTab := Table{ID: id, Title: title + " — p values", Header: append([]string{"combo"}, rangeHeaders(ranges)...)}
	tTab := Table{ID: id, Title: title + " — runtime (construction / tabu)", Header: append([]string{"combo"}, rangeHeaders(ranges)...)}
	uTab := Table{ID: id, Title: title + " — unassigned areas (% of n)", Header: append([]string{"combo"}, rangeHeaders(ranges)...)}
	for _, combo := range sumComboNames {
		pRow, tRow, uRow := []string{combo}, []string{combo}, []string{combo}
		for _, c := range ranges {
			var r runResult
			var err error
			if combo == "MP" {
				if !math.IsInf(c.Upper, 1) {
					pRow = append(pRow, "N/A")
					tRow = append(tRow, "N/A")
					uRow = append(uRow, "N/A")
					continue
				}
				r, err = runMaxP(cfg, ds, c.Lower)
			} else {
				r, err = run(cfg, ds, sumCombo(combo, c))
			}
			if err != nil {
				return nil, err
			}
			if r.Infeasible {
				pRow = append(pRow, "inf.")
				tRow = append(tRow, "-")
				uRow = append(uRow, "-")
				continue
			}
			pRow = append(pRow, fmt.Sprintf("%d", r.P))
			tRow = append(tRow, fmt.Sprintf("%s/%s", secs(r.ConstructionSec), secs(r.TabuSec)))
			uRow = append(uRow, fmt.Sprintf("%.1f%%", 100*float64(r.Unassigned)/float64(ds.N())))
		}
		pTab.Rows = append(pTab.Rows, pRow)
		tTab.Rows = append(tTab.Rows, tRow)
		uTab.Rows = append(uTab.Rows, uRow)
	}
	pTab.Notes = []string{fmt.Sprintf("dataset 2k at scale %g (%d areas); SUM on %s; MP = classic max-p baseline", cfg.Scale, ds.N(), census.AttrTotalPop)}
	return []Table{pTab, tTab, uTab}, nil
}

func sumRangesOpenUpper() []constraint.Constraint {
	inf := math.Inf(1)
	return []constraint.Constraint{
		sumRange(1000, inf), sumRange(10000, inf), sumRange(20000, inf),
		sumRange(30000, inf), sumRange(40000, inf),
	}
}

func sumRangesBounded() []constraint.Constraint {
	return []constraint.Constraint{
		sumRange(15000, 25000), sumRange(10000, 30000), sumRange(5000, 35000),
	}
}

// Table4SumCombos reproduces Table IV: p values for SUM combinations over
// open-upper and bounded ranges, including the MP baseline.
func Table4SumCombos(cfg Config) ([]Table, error) {
	a, err := sumSweep(cfg, "table4", "Table IV (u = inf)", sumRangesOpenUpper())
	if err != nil {
		return nil, err
	}
	b, err := sumSweep(cfg, "table4", "Table IV (bounded ranges)", sumRangesBounded())
	if err != nil {
		return nil, err
	}
	return []Table{a[0], b[0]}, nil
}

// Fig12SumVsMaxP reproduces Figure 12: runtime for SUM with u = inf,
// including the MP-regions baseline.
func Fig12SumVsMaxP(cfg Config) ([]Table, error) {
	return sumSweep(cfg, "fig12", "Fig. 12: SUM with u = inf vs MP baseline", sumRangesOpenUpper())
}

// Fig13SumBounded reproduces Figure 13: runtime for SUM with bounded,
// progressively longer ranges.
func Fig13SumBounded(cfg Config) ([]Table, error) {
	return sumSweep(cfg, "fig13", "Fig. 13: SUM with bounded ranges", sumRangesBounded())
}
