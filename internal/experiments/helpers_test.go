package experiments

import (
	"math"
	"strings"
	"testing"

	"emp/internal/constraint"
)

func TestComboBuilders(t *testing.T) {
	c := minRange(1000, 2000)
	if got := minCombo("M", c); len(got) != 1 {
		t.Errorf("M = %v", got)
	}
	if got := minCombo("MAS", c); len(got) != 3 {
		t.Errorf("MAS = %v", got)
	}
	a := avgRange(2000, 4000)
	if got := avgCombo("A", a); len(got) != 1 {
		t.Errorf("A = %v", got)
	}
	if got := avgCombo("MAS", a); len(got) != 3 {
		t.Errorf("avg MAS = %v", got)
	}
	s := sumRange(1000, math.Inf(1))
	if got := sumCombo("S", s); len(got) != 1 {
		t.Errorf("S = %v", got)
	}
	if got := sumCombo("MAS", s); len(got) != 3 {
		t.Errorf("sum MAS = %v", got)
	}
	// Every combo set is valid.
	for _, set := range []constraint.Set{
		minCombo("MS", c), avgCombo("AS", a), sumCombo("AS", s),
	} {
		if err := set.Validate(); err != nil {
			t.Errorf("combo invalid: %v", err)
		}
	}
}

func TestComboBuildersPanicOnUnknown(t *testing.T) {
	for _, f := range []func(){
		func() { minCombo("X", minRange(1, 2)) },
		func() { avgCombo("X", avgRange(1, 2)) },
		func() { sumCombo("X", sumRange(1, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on unknown combo")
				}
			}()
			f()
		}()
	}
}

func TestSecsAndHeaders(t *testing.T) {
	if secs(1.23456) != "1.235s" {
		t.Errorf("secs = %q", secs(1.23456))
	}
	hdr := rangeHeaders(minRangesUpperOnly())
	if len(hdr) != 3 || !strings.Contains(hdr[0], "2k") {
		t.Errorf("headers = %v", hdr)
	}
}

func TestDefaultConstraintsMatchTableII(t *testing.T) {
	m, a, s := defaultMin(), defaultAvg(), defaultSum()
	if m.Agg != constraint.Min || m.Upper != 3000 || !math.IsInf(m.Lower, -1) {
		t.Errorf("default MIN = %v", m)
	}
	if a.Agg != constraint.Avg || a.Lower != 1500 || a.Upper != 3500 {
		t.Errorf("default AVG = %v", a)
	}
	if s.Agg != constraint.Sum || s.Lower != 20000 || !math.IsInf(s.Upper, 1) {
		t.Errorf("default SUM = %v", s)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 0.25 || cfg.Seed != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
	cfg = Config{Scale: 0.5, Seed: 9}.withDefaults()
	if cfg.Scale != 0.5 || cfg.Seed != 9 {
		t.Errorf("explicit config overwritten: %+v", cfg)
	}
}

func TestDatasetScaleOne(t *testing.T) {
	// Scale >= 1 must produce the exact paper sizes.
	ds, err := dataset(Config{Scale: 1, Seed: 1}, "1k")
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 1012 {
		t.Errorf("full 1k has %d areas", ds.N())
	}
}
