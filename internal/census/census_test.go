package census

import (
	"math"
	"sort"
	"testing"

	"emp/internal/stats"
)

func TestSizeNamesOrdered(t *testing.T) {
	names := SizeNames()
	if len(names) != 12 {
		t.Fatalf("got %d names, want 12", len(names))
	}
	for i := 1; i < len(names); i++ {
		a, b := Sizes[names[i-1]], Sizes[names[i]]
		if a.Areas > b.Areas || (a.Areas == b.Areas && names[i-1] >= names[i]) {
			t.Errorf("names not ordered by (size, name) at %d: %v", i, names)
		}
	}
	if names[0] != "1k" || names[len(names)-1] != "50k1" {
		t.Errorf("names = %v", names)
	}
}

func TestSingleComponentPresets(t *testing.T) {
	for _, name := range []string{"30k1", "40k1", "50k1"} {
		base := Sizes[name[:len(name)-1]]
		sz, ok := Sizes[name]
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if sz.Areas != base.Areas || sz.States != base.States {
			t.Errorf("%s = %+v, want areas/states of %+v", name, sz, base)
		}
		if sz.Components != 1 {
			t.Errorf("%s has %d components, want 1", name, sz.Components)
		}
	}
	// The layout must actually deliver one connected component (scaled down
	// to keep the test fast; Scaled preserves the component structure).
	d, err := Scaled("30k1", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Components(); got != 1 {
		t.Errorf("30k1 generated %d components, want 1", got)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Options{Areas: 0}); err == nil {
		t.Error("zero areas accepted")
	}
	if _, err := Generate(Options{Areas: 10, States: 2, Components: 3}); err == nil {
		t.Error("components > states accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opt := Options{Name: "t", Areas: 200, States: 2, Components: 1, Seed: 7}
	d1, err := Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := d1.Column(AttrEmployed), d2.Column(AttrEmployed)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("not deterministic at area %d: %v vs %v", i, c1[i], c2[i])
		}
	}
	d3, err := Generate(Options{Name: "t", Areas: 200, States: 2, Components: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	c3 := d3.Column(AttrEmployed)
	for i := range c1 {
		if c1[i] != c3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical attributes")
	}
}

func TestGenerateStructure(t *testing.T) {
	tests := []struct {
		name       string
		areas      int
		states     int
		components int
	}{
		{"single", 150, 1, 1},
		{"two states one comp", 300, 2, 1},
		{"three states two comps", 450, 3, 2},
		{"five comps", 1000, 10, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Generate(Options{Name: tc.name, Areas: tc.areas, States: tc.states, Components: tc.components, Seed: 3, Jitter: -1})
			if err != nil {
				t.Fatal(err)
			}
			if d.N() != tc.areas {
				t.Errorf("N = %d, want %d", d.N(), tc.areas)
			}
			if err := d.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			if got := d.Components(); got != tc.components {
				t.Errorf("Components = %d, want %d", got, tc.components)
			}
			// Planar rook lattices never exceed 4 neighbors.
			for i, nbs := range d.Adjacency {
				if len(nbs) > 4 {
					t.Errorf("area %d has %d neighbors", i, len(nbs))
				}
			}
		})
	}
}

func TestNamedDatasets(t *testing.T) {
	// Generate the three smallest paper datasets in full and check their
	// exact sizes and component structure.
	for _, name := range []string{"1k", "2k"} {
		d, err := Named(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.N() != Sizes[name].Areas {
			t.Errorf("%s: N = %d, want %d", name, d.N(), Sizes[name].Areas)
		}
		if got := d.Components(); got != Sizes[name].Components {
			t.Errorf("%s: components = %d, want %d", name, got, Sizes[name].Components)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if d.Dissimilarity != AttrHouseholds {
			t.Errorf("%s: dissimilarity = %q", name, d.Dissimilarity)
		}
	}
	if _, err := Named("3k"); err == nil {
		t.Error("unknown dataset name accepted")
	}
}

func TestScaled(t *testing.T) {
	d, err := Scaled("50k", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() < 30 || d.N() > 1000 {
		t.Errorf("scaled N = %d", d.N())
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := Scaled("50k", 0, 1); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Scaled("50k", 1.5, 1); err == nil {
		t.Error("scale > 1 accepted")
	}
	if _, err := Scaled("nope", 0.5, 1); err == nil {
		t.Error("unknown name accepted")
	}
	// Tiny scale: floors at >= 30 areas and component count adapts.
	tiny, err := Scaled("50k", 0.0001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.N() < 30 {
		t.Errorf("tiny N = %d, want >= 30", tiny.N())
	}
}

// TestAttributeCalibration pins the distributional facts the paper's
// experiments rely on (see package comment). Uses the default "2k" dataset.
func TestAttributeCalibration(t *testing.T) {
	d, err := Named("2k")
	if err != nil {
		t.Fatal(err)
	}
	n := float64(d.N())

	// EMPLOYED: positively skewed, bulk < 4k, outliers <= 6149 (Fig. 8),
	// mean within the default AVG range, median < 2k (drives the hard
	// 3k±1k case).
	emp := d.Column(AttrEmployed)
	st, _ := d.ColumnStats(AttrEmployed)
	if st.Mean < 1500 || st.Mean > 3500 {
		t.Errorf("EMPLOYED mean = %.0f, want within default AVG range [1500,3500]", st.Mean)
	}
	if st.Max > 6149 {
		t.Errorf("EMPLOYED max = %.0f, want <= 6149", st.Max)
	}
	sorted := append([]float64(nil), emp...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if median >= 2000 {
		t.Errorf("EMPLOYED median = %.0f, want < 2000 (paper: >half of areas below l=2k)", median)
	}
	below4k := 0
	for _, v := range emp {
		if v < 4000 {
			below4k++
		}
	}
	if frac := float64(below4k) / n; frac < 0.90 {
		t.Errorf("EMPLOYED fraction below 4k = %.2f, want >= 0.90", frac)
	}
	mean := st.Mean
	if median >= mean {
		t.Errorf("EMPLOYED median %.0f >= mean %.0f: not positively skewed", median, mean)
	}

	// POP16UP quantiles implied by Table III seed counts.
	p16 := d.Column(AttrPop16Up)
	q := func(thresh float64) float64 {
		c := 0
		for _, v := range p16 {
			if v <= thresh {
				c++
			}
		}
		return float64(c) / n
	}
	if f := q(2000); f < 0.05 || f > 0.25 {
		t.Errorf("P(POP16UP<=2k) = %.2f, want ~0.1", f)
	}
	if f := q(3500); f < 0.45 || f > 0.75 {
		t.Errorf("P(POP16UP<=3.5k) = %.2f, want ~0.62", f)
	}
	if f := q(5000); f < 0.85 {
		t.Errorf("P(POP16UP<=5k) = %.2f, want ~0.93", f)
	}

	// TOTALPOP: mean ~4.4k so SUM >= 20k regions average ~5 areas.
	tp, _ := d.ColumnStats(AttrTotalPop)
	if tp.Mean < 3500 || tp.Mean > 5500 {
		t.Errorf("TOTALPOP mean = %.0f, want ~4.4k", tp.Mean)
	}
	if tp.Min < 0 {
		t.Errorf("TOTALPOP min negative")
	}

	// INCOME satisfiable for AVG in [3000, 5000].
	inc, _ := d.ColumnStats(AttrIncome)
	if inc.Mean < 3000 || inc.Mean > 5000 {
		t.Errorf("INCOME mean = %.0f, want within [3000,5000]", inc.Mean)
	}

	// All columns non-negative.
	for _, name := range d.AttrNames {
		s, _ := d.ColumnStats(name)
		if s.Min < 0 {
			t.Errorf("%s has negative values (min %.1f)", name, s.Min)
		}
	}
}

func TestSpatialAutocorrelation(t *testing.T) {
	// Neighbor attribute correlation should be positive: the spatial field
	// makes nearby tracts similar. Compare mean |diff| between neighbors
	// vs between random pairs.
	d, err := Generate(Options{Name: "sa", Areas: 900, Seed: 11, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}
	emp := d.Column(AttrEmployed)
	var nbDiff, nbCount float64
	for i, nbs := range d.Adjacency {
		for _, j := range nbs {
			if j > i {
				nbDiff += math.Abs(emp[i] - emp[j])
				nbCount++
			}
		}
	}
	nbDiff /= nbCount
	var rndDiff, rndCount float64
	for i := 0; i < d.N(); i += 3 {
		j := (i*7 + 311) % d.N()
		if i != j {
			rndDiff += math.Abs(emp[i] - emp[j])
			rndCount++
		}
	}
	rndDiff /= rndCount
	if nbDiff >= rndDiff {
		t.Errorf("neighbor mean |diff| %.1f >= random-pair %.1f: no spatial autocorrelation", nbDiff, rndDiff)
	}
	// Moran's I must be clearly positive (real census tracts typically
	// score 0.3-0.7 on socio-economic attributes).
	if i := stats.MoranI(emp, d.Adjacency); i < 0.1 {
		t.Errorf("Moran's I = %.3f, want clearly positive", i)
	}
}
