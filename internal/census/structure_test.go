package census

import (
	"math"
	"testing"
)

// TestScaledPreservesDistributions: scaling a named dataset must keep the
// attribute distributions, not just the sizes, so the experiment shapes
// carry across scales.
func TestScaledPreservesDistributions(t *testing.T) {
	full, err := Named("1k")
	if err != nil {
		t.Fatal(err)
	}
	small, err := Scaled("1k", 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{AttrEmployed, AttrPop16Up, AttrTotalPop} {
		fs, _ := full.ColumnStats(attr)
		ss, _ := small.ColumnStats(attr)
		if ss.Mean < 0.7*fs.Mean || ss.Mean > 1.3*fs.Mean {
			t.Errorf("%s: scaled mean %.0f vs full %.0f — distribution drifted", attr, ss.Mean, fs.Mean)
		}
	}
}

// TestAllAttributesPresent: every documented attribute exists on every
// generated dataset.
func TestAllAttributesPresent(t *testing.T) {
	ds, err := Generate(Options{Name: "attrs", Areas: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{
		AttrTotalPop, AttrPop16Up, AttrEmployed, AttrHouseholds,
		AttrIncome, AttrTransit, AttrCalls, AttrWorkload,
	} {
		if ds.Column(attr) == nil {
			t.Errorf("attribute %s missing", attr)
		}
	}
	if len(ds.AttrNames) != 8 {
		t.Errorf("attribute count = %d, want 8", len(ds.AttrNames))
	}
}

// TestPhysicalConsistency: EMPLOYED <= POP16UP <= TOTALPOP per tract.
func TestPhysicalConsistency(t *testing.T) {
	ds, err := Generate(Options{Name: "phys", Areas: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tp := ds.Column(AttrTotalPop)
	p16 := ds.Column(AttrPop16Up)
	emp := ds.Column(AttrEmployed)
	for i := 0; i < ds.N(); i++ {
		if p16[i] > tp[i]+0.5 {
			t.Fatalf("area %d: POP16UP %.0f > TOTALPOP %.0f", i, p16[i], tp[i])
		}
		if emp[i] > p16[i]+0.5 {
			t.Fatalf("area %d: EMPLOYED %.0f > POP16UP %.0f", i, emp[i], p16[i])
		}
	}
}

// TestComponentGapsAreReal: multi-component layouts place blocks far enough
// apart that no polygon edges are shared across components.
func TestComponentGapsAreReal(t *testing.T) {
	ds, err := Generate(Options{Name: "gap", Areas: 200, States: 4, Components: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	comp, count := ds.Graph().Components()
	if count != 2 {
		t.Fatalf("components = %d", count)
	}
	// Bounding boxes of the two components must not overlap in x.
	minX := [2]float64{math.Inf(1), math.Inf(1)}
	maxX := [2]float64{math.Inf(-1), math.Inf(-1)}
	for i, pg := range ds.Polygons {
		b := pg.BBox()
		c := comp[i]
		minX[c] = math.Min(minX[c], b.MinX)
		maxX[c] = math.Max(maxX[c], b.MaxX)
	}
	if !(maxX[0] < minX[1] || maxX[1] < minX[0]) {
		t.Errorf("component x-ranges overlap: [%.1f,%.1f] vs [%.1f,%.1f]",
			minX[0], maxX[0], minX[1], maxX[1])
	}
}
