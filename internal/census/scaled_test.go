package census

import (
	"math"
	"reflect"
	"testing"
)

// TestScaledDeterministicPerSeed: the serving layer shares one generated
// dataset across every request with the same (name, scale, seed) cache key,
// so generation must be a pure function of those three values — and a
// different seed must actually produce a different substrate.
func TestScaledDeterministicPerSeed(t *testing.T) {
	a, err := Scaled("2k", 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scaled("2k", 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() {
		t.Fatalf("same seed, different N: %d vs %d", a.N(), b.N())
	}
	if !reflect.DeepEqual(a.Adjacency, b.Adjacency) {
		t.Error("same seed produced different adjacency")
	}
	for _, attr := range []string{AttrTotalPop, AttrPop16Up} {
		if !reflect.DeepEqual(a.Column(attr), b.Column(attr)) {
			t.Errorf("same seed produced different %s column", attr)
		}
	}

	c, err := Scaled("2k", 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() == a.N() && reflect.DeepEqual(a.Column(AttrTotalPop), c.Column(AttrTotalPop)) {
		t.Error("different seeds produced identical attributes")
	}
}

// TestScaledAreaCount: the area count must track round(scale * full size)
// with the 30-area floor, monotonically in scale.
func TestScaledAreaCount(t *testing.T) {
	full := Sizes["10k"].Areas
	prev := 0
	for _, scale := range []float64{0.05, 0.1, 0.25, 0.5} {
		ds, err := Scaled("10k", scale, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := int(math.Round(float64(full) * scale))
		if want < 30 {
			want = 30
		}
		if ds.N() != want {
			t.Errorf("scale %g: N = %d, want %d", scale, ds.N(), want)
		}
		if ds.N() <= prev {
			t.Errorf("scale %g: N = %d not larger than previous %d", scale, ds.N(), prev)
		}
		prev = ds.N()
	}
}

// TestScaledContiguity: a scaled substrate must keep a sound, symmetric
// adjacency graph with exactly the component structure of its full-size
// original (clamped when there are fewer areas/states than components) —
// otherwise scaled solves would face a differently-shaped contiguity
// problem than the full-size ones they stand in for.
func TestScaledContiguity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		scale float64
	}{
		{"2k", 0.1},   // single component
		{"10k", 0.1},  // two components
		{"50k", 0.05}, // five components across many states
	} {
		ds, err := Scaled(tc.name, tc.scale, 1)
		if err != nil {
			t.Fatalf("%s@%g: %v", tc.name, tc.scale, err)
		}
		g := ds.Graph()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s@%g: invalid graph: %v", tc.name, tc.scale, err)
		}
		_, count := g.Components()
		want := Sizes[tc.name].Components
		if states := Sizes[tc.name].States; want > states {
			want = states
		}
		if count != want {
			t.Errorf("%s@%g: %d components, want %d", tc.name, tc.scale, count, want)
		}
		// No isolated areas: every area can join some region.
		for a := 0; a < ds.N(); a++ {
			if g.Degree(a) == 0 {
				t.Fatalf("%s@%g: area %d has no neighbors", tc.name, tc.scale, a)
			}
		}
	}
}
