// Package census is the data substrate standing in for the paper's 2010 US
// census tract datasets.
//
// The paper evaluates on nine real datasets (census tracts of LA City, LA
// County, Southern California, California, and five multi-state unions, see
// Table I) joined with census attributes (POP16UP, EMPLOYED, TOTALPOP,
// HOUSEHOLDS). Those shapefiles and attribute tables are not redistributable
// here, so this package generates deterministic synthetic equivalents:
//
//   - Geometry: jittered polygon lattices organized into "states"; large
//     datasets contain several connected components (like real tract data
//     with islands), which EMP explicitly supports.
//   - Attributes: lognormal draws with a smooth spatial field, calibrated so
//     the distributional facts the paper relies on hold — EMPLOYED is
//     positively skewed with the bulk under 4k and outliers around 6.1k
//     (Fig. 8), POP16UP quantiles make the Table III seed counts land in
//     the right regimes, and TOTALPOP averages ~3.2k per tract so the SUM
//     sweeps of Table IV produce comparable region sizes.
//
// Everything is reproducible from a seed; the named datasets use seed 1.
package census

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"emp/internal/data"
	"emp/internal/fault"
	"emp/internal/geom"
)

// Attribute names shared with the paper's Table II.
const (
	AttrTotalPop   = "TOTALPOP"
	AttrPop16Up    = "POP16UP"
	AttrEmployed   = "EMPLOYED"
	AttrHouseholds = "HOUSEHOLDS"
	// Extra attributes used by the intro's example applications.
	AttrIncome   = "INCOME"
	AttrTransit  = "TRANSIT"
	AttrCalls    = "CALLS"
	AttrWorkload = "WORKLOAD"
)

// DatasetSize describes one of the paper's nine named datasets.
type DatasetSize struct {
	// Areas is the number of census tracts (paper Table I and Section VII-A).
	Areas int
	// States is the number of states covered; it drives the block layout.
	States int
	// Components is the number of connected components the synthetic
	// layout produces (real tract data is also not always one component).
	Components int
}

// Sizes lists the nine evaluation datasets plus the single-component
// variants of the large ones. Keys "1k" ... "50k" are the names used
// throughout the paper; the "Nk1" presets keep the same area and state
// counts but lay every state out grid-connected in one component — the
// shape cut-based sharding targets, where component sharding has nothing
// to split.
var Sizes = map[string]DatasetSize{
	"1k":   {Areas: 1012, States: 1, Components: 1},
	"2k":   {Areas: 2344, States: 1, Components: 1},
	"4k":   {Areas: 3947, States: 1, Components: 1},
	"8k":   {Areas: 8049, States: 1, Components: 2},
	"10k":  {Areas: 10255, States: 3, Components: 2},
	"20k":  {Areas: 20570, States: 13, Components: 3},
	"30k":  {Areas: 29887, States: 18, Components: 3},
	"40k":  {Areas: 40214, States: 25, Components: 4},
	"50k":  {Areas: 49943, States: 30, Components: 5},
	"30k1": {Areas: 29887, States: 18, Components: 1},
	"40k1": {Areas: 40214, States: 25, Components: 1},
	"50k1": {Areas: 49943, States: 30, Components: 1},
}

// paperNames lists the paper's nine Table I datasets in area order; the
// single-component variants are deliberately absent.
var paperNames = []string{"1k", "2k", "4k", "8k", "10k", "20k", "30k", "40k", "50k"}

// PaperSizeNames returns the paper's nine dataset names ordered by area
// count, excluding the synthetic single-component "Nk1" variants. Use this
// for reproductions of the paper's tables; use SizeNames for the full
// generator inventory.
func PaperSizeNames() []string {
	return append([]string(nil), paperNames...)
}

// SizeNames returns the dataset names ordered by area count, ties broken by
// name so the listing is stable (the "Nk1" single-component variants share
// their base preset's area count).
func SizeNames() []string {
	names := make([]string, 0, len(Sizes))
	for n := range Sizes {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if Sizes[names[i]].Areas != Sizes[names[j]].Areas {
			return Sizes[names[i]].Areas < Sizes[names[j]].Areas
		}
		return names[i] < names[j]
	})
	return names
}

// Options configures synthetic dataset generation.
type Options struct {
	// Name labels the dataset.
	Name string
	// Areas is the total number of areas (required, > 0).
	Areas int
	// States is the number of state blocks; 0 means 1.
	States int
	// Components is the number of connected components; 0 means 1. Must
	// not exceed States (each component holds >= 1 state).
	Components int
	// Seed drives all randomness. The same options always produce the
	// same dataset.
	Seed int64
	// Jitter perturbs lattice vertices (fraction of cell size); negative
	// means the default 0.25.
	Jitter float64
}

// Generate builds a synthetic census dataset.
func Generate(opt Options) (*data.Dataset, error) {
	if err := fault.Inject("census.generate"); err != nil {
		return nil, fmt.Errorf("census: generating %q: %w", opt.Name, err)
	}
	if opt.Areas <= 0 {
		return nil, fmt.Errorf("census: Areas must be positive, got %d", opt.Areas)
	}
	states := opt.States
	if states <= 0 {
		states = 1
	}
	if states > opt.Areas {
		states = opt.Areas
	}
	comps := opt.Components
	if comps <= 0 {
		comps = 1
	}
	if comps > states {
		return nil, fmt.Errorf("census: Components (%d) cannot exceed States (%d)", comps, states)
	}
	jitter := opt.Jitter
	if jitter < 0 {
		jitter = 0.25
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	polys := layoutStates(opt.Areas, states, comps, jitter, rng)
	d := data.FromPolygons(opt.Name, polys, geom.Rook)
	d.Dissimilarity = AttrHouseholds
	if err := synthesizeAttributes(d, rng); err != nil {
		return nil, err
	}
	return d, nil
}

// Named generates one of the paper's nine datasets by name with the
// canonical seed.
func Named(name string) (*data.Dataset, error) {
	return NamedSeeded(name, 1)
}

// NamedSeeded generates a named dataset with a custom seed.
func NamedSeeded(name string, seed int64) (*data.Dataset, error) {
	sz, ok := Sizes[name]
	if !ok {
		return nil, fmt.Errorf("census: unknown dataset %q (known: %v)", name, SizeNames())
	}
	comps := sz.Components
	if comps > sz.States {
		// Some inventory entries (e.g. "8k") record more components than
		// state blocks; clamp like Scaled does instead of failing.
		comps = sz.States
	}
	return Generate(Options{
		Name:       name,
		Areas:      sz.Areas,
		States:     sz.States,
		Components: comps,
		Seed:       seed,
		Jitter:     -1,
	})
}

// Scaled generates a named dataset shrunk to scale*Areas areas (at least 30),
// preserving the state/component structure. Used by the benchmark harness to
// keep the large-dataset experiments tractable on small machines while
// keeping the shape of the scalability curves.
func Scaled(name string, scale float64, seed int64) (*data.Dataset, error) {
	sz, ok := Sizes[name]
	if !ok {
		return nil, fmt.Errorf("census: unknown dataset %q", name)
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("census: scale must be in (0, 1], got %g", scale)
	}
	areas := int(math.Round(float64(sz.Areas) * scale))
	if areas < 30 {
		areas = 30
	}
	states, comps := sz.States, sz.Components
	if states > areas {
		states = areas
	}
	if comps > states {
		comps = states
	}
	return Generate(Options{
		Name:       name,
		Areas:      areas,
		States:     states,
		Components: comps,
		Seed:       seed,
		Jitter:     -1,
	})
}

// layoutStates places state lattice blocks left to right. States within the
// same component abut exactly (sharing full border edges); a horizontal gap
// separates components so no edges are shared across them.
func layoutStates(areas, states, comps int, jitter float64, rng *rand.Rand) []geom.Polygon {
	// Distribute areas over states as evenly as possible.
	counts := make([]int, states)
	base, rem := areas/states, areas%states
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
	}
	// Group states into components: contiguous runs of the state list.
	compOf := make([]int, states)
	for i := range compOf {
		compOf[i] = i * comps / states
	}
	// All blocks share the same row count so abutting borders line up.
	perState := areas / states
	rows := int(math.Round(math.Sqrt(float64(perState))))
	if rows < 1 {
		rows = 1
	}
	var polys []geom.Polygon
	x := 0.0
	for s := 0; s < states; s++ {
		if s > 0 && compOf[s] != compOf[s-1] {
			x += 2 // gap: new connected component
		}
		cols := (counts[s] + rows - 1) / rows
		block := geom.Lattice(geom.LatticeOptions{
			Cols:     cols,
			Rows:     rows,
			Cells:    counts[s],
			Jitter:   jitter,
			Rng:      rng,
			OriginX:  x,
			CellSize: 1,
		})
		polys = append(polys, block...)
		x += float64(cols)
	}
	return polys
}

// lognormal draws exp(N(mu, sigma^2)) using the rng.
func lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// spatialField returns a smooth multiplicative factor in roughly
// [1/amplitude, amplitude] that varies slowly across space, giving the
// attributes the spatial autocorrelation real census data has.
type spatialField struct {
	fx, fy, px, py, amp float64
}

func newSpatialField(rng *rand.Rand, extent float64, amp float64) spatialField {
	period := extent/3 + 1
	return spatialField{
		fx:  2 * math.Pi / period * (0.8 + 0.4*rng.Float64()),
		fy:  2 * math.Pi / period * (0.8 + 0.4*rng.Float64()),
		px:  rng.Float64() * 2 * math.Pi,
		py:  rng.Float64() * 2 * math.Pi,
		amp: amp,
	}
}

func (f spatialField) at(p geom.Point) float64 {
	v := (math.Sin(f.fx*p.X+f.px) + math.Sin(f.fy*p.Y+f.py)) / 2
	return math.Exp(f.amp * v)
}

// synthesizeAttributes fills in the census-like attribute columns.
//
// Calibration targets (see package comment):
//
//	TOTALPOP:  lognormal(ln 4100, 0.33) — tract mean ≈ 4.4k (LA County
//	           tracts average ~4.5k people).
//	POP16UP:   TOTALPOP × U[0.72, 0.84] — quantiles P(≤2k)≈0.10,
//	           P(≤3.5k)≈0.62, P(≤5k)≈0.93 as implied by Table III.
//	EMPLOYED:  lognormal(ln 1800, 0.40), capped at min(POP16UP, 6149) —
//	           positively skewed, bulk < 4k (Fig. 8), overall mean inside
//	           the default AVG range [1.5k, 3.5k], median < 2k, and only
//	           weakly correlated with POP16UP so that extrema seeds
//	           frequently satisfy the AVG range directly (Table III shows
//	           p(MA)/p(M) ≈ 0.7 across seed pools, which requires this).
//	HOUSEHOLDS: TOTALPOP / (2.8 ± noise) — dissimilarity attribute.
//	INCOME:    lognormal(ln 3800, 0.30) — monthly income for the COVID
//	           policy example (AVG range [3k, 5k] is satisfiable).
//	TRANSIT:   lognormal(ln 700, 0.80) — heavy-tailed transit ridership.
//	CALLS:     lognormal(ln 120, 0.60) — patrol calls for service.
//	WORKLOAD:  50 + U[0,100] — patrol workload units.
func synthesizeAttributes(d *data.Dataset, rng *rand.Rand) error {
	n := d.N()
	ext := geom.EmptyBBox()
	cents := make([]geom.Point, n)
	for i, pg := range d.Polygons {
		cents[i] = pg.Centroid()
		ext.Extend(cents[i])
	}
	extent := math.Max(ext.Width(), ext.Height())
	popField := newSpatialField(rng, extent, 0.25)
	empField := newSpatialField(rng, extent, 0.35)
	incField := newSpatialField(rng, extent, 0.30)
	trnField := newSpatialField(rng, extent, 0.50)

	totalpop := make([]float64, n)
	pop16up := make([]float64, n)
	employed := make([]float64, n)
	households := make([]float64, n)
	income := make([]float64, n)
	transit := make([]float64, n)
	calls := make([]float64, n)
	workload := make([]float64, n)

	for i := 0; i < n; i++ {
		c := cents[i]
		tp := lognormal(rng, math.Log(4100), 0.33) * popField.at(c)
		if tp > 15000 {
			tp = 15000
		}
		totalpop[i] = math.Round(tp)
		p16 := totalpop[i] * (0.72 + 0.12*rng.Float64())
		pop16up[i] = math.Round(p16)
		emp := lognormal(rng, math.Log(1800), 0.40) * empField.at(c)
		if emp > pop16up[i] {
			emp = pop16up[i]
		}
		if emp > 6149 {
			emp = 6149
		}
		employed[i] = math.Round(emp)
		households[i] = math.Round(totalpop[i] / (2.8 + 0.4*(rng.Float64()-0.5)))
		income[i] = math.Round(lognormal(rng, math.Log(3800), 0.30) * incField.at(c))
		transit[i] = math.Round(lognormal(rng, math.Log(700), 0.80) * trnField.at(c))
		calls[i] = math.Round(lognormal(rng, math.Log(120), 0.60))
		workload[i] = math.Round(50 + 100*rng.Float64())
	}

	cols := []struct {
		name string
		col  []float64
	}{
		{AttrTotalPop, totalpop},
		{AttrPop16Up, pop16up},
		{AttrEmployed, employed},
		{AttrHouseholds, households},
		{AttrIncome, income},
		{AttrTransit, transit},
		{AttrCalls, calls},
		{AttrWorkload, workload},
	}
	for _, c := range cols {
		if err := d.AddColumn(c.name, c.col); err != nil {
			return err
		}
	}
	return nil
}
