// Package geojson imports and exports datasets and solutions as GeoJSON
// (RFC 7946), the interchange format used by web maps and modern GIS
// tooling. Together with internal/shapefile it replaces the paper's QGIS
// workflow for getting census data in and regionalization results out.
package geojson

import (
	"encoding/json"
	"fmt"
	"io"

	"emp/internal/data"
	"emp/internal/geom"
)

// feature mirrors a GeoJSON Feature with a polygonal geometry.
type feature struct {
	Type       string             `json:"type"`
	Geometry   geometry           `json:"geometry"`
	Properties map[string]float64 `json:"properties"`
}

type geometry struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates"`
}

type featureCollection struct {
	Type     string    `json:"type"`
	Features []feature `json:"features"`
}

// Write exports the dataset as a FeatureCollection: one Polygon feature per
// area carrying every attribute column as a numeric property plus the area
// id. When assignment is non-nil (one region index per area, -1 for
// unassigned) a "region" property is added, making the output directly
// render-able as a choropleth of the regionalization.
func Write(w io.Writer, ds *data.Dataset, assignment []int) error {
	if ds.Polygons == nil {
		return fmt.Errorf("geojson: dataset %q has no polygons", ds.Name)
	}
	if assignment != nil && len(assignment) != ds.N() {
		return fmt.Errorf("geojson: assignment has %d entries for %d areas", len(assignment), ds.N())
	}
	fc := featureCollection{Type: "FeatureCollection"}
	for i, pg := range ds.Polygons {
		props := make(map[string]float64, len(ds.AttrNames)+2)
		props["id"] = float64(i)
		for c, name := range ds.AttrNames {
			props[name] = ds.Cols[c][i]
		}
		if assignment != nil {
			props["region"] = float64(assignment[i])
		}
		coords, err := marshalPolygon(pg)
		if err != nil {
			return fmt.Errorf("geojson: area %d: %w", i, err)
		}
		fc.Features = append(fc.Features, feature{
			Type:       "Feature",
			Geometry:   geometry{Type: "Polygon", Coordinates: coords},
			Properties: props,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}

func marshalPolygon(pg geom.Polygon) (json.RawMessage, error) {
	if len(pg.Outer) < 3 {
		return nil, fmt.Errorf("polygon has %d vertices", len(pg.Outer))
	}
	// GeoJSON rings close explicitly: repeat the first vertex.
	ring := make([][2]float64, 0, len(pg.Outer)+1)
	for _, p := range pg.Outer {
		ring = append(ring, [2]float64{p.X, p.Y})
	}
	ring = append(ring, ring[0])
	return json.Marshal([][][2]float64{ring})
}

// Read imports a FeatureCollection of Polygon/MultiPolygon features into a
// dataset. Numeric properties become attribute columns (present on every
// feature, else an error); the largest ring of each feature is used as the
// area boundary; adjacency is derived under the given contiguity rule.
func Read(r io.Reader, name string, rule geom.Contiguity) (*data.Dataset, error) {
	var fc featureCollection
	if err := json.NewDecoder(r).Decode(&fc); err != nil {
		return nil, fmt.Errorf("geojson: decode: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("geojson: top-level type %q, want FeatureCollection", fc.Type)
	}
	if len(fc.Features) == 0 {
		return nil, fmt.Errorf("geojson: no features")
	}
	polys := make([]geom.Polygon, 0, len(fc.Features))
	for i, f := range fc.Features {
		pg, err := unmarshalGeometry(f.Geometry)
		if err != nil {
			return nil, fmt.Errorf("geojson: feature %d: %w", i, err)
		}
		polys = append(polys, pg)
	}
	ds := data.FromPolygons(name, polys, rule)

	// Attribute columns: the intersection is required to be the full set —
	// every numeric property of feature 0 must exist on all features.
	for key := range fc.Features[0].Properties {
		if key == "id" || key == "region" {
			continue
		}
		col := make([]float64, len(fc.Features))
		for i, f := range fc.Features {
			v, ok := f.Properties[key]
			if !ok {
				return nil, fmt.Errorf("geojson: feature %d lacks property %q", i, key)
			}
			col[i] = v
		}
		if err := ds.AddColumn(key, col); err != nil {
			return nil, err
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

func unmarshalGeometry(g geometry) (geom.Polygon, error) {
	switch g.Type {
	case "Polygon":
		var rings [][][2]float64
		if err := json.Unmarshal(g.Coordinates, &rings); err != nil {
			return geom.Polygon{}, err
		}
		return largestRing([][][][2]float64{rings})
	case "MultiPolygon":
		var multi [][][][2]float64
		if err := json.Unmarshal(g.Coordinates, &multi); err != nil {
			return geom.Polygon{}, err
		}
		return largestRing(multi)
	default:
		return geom.Polygon{}, fmt.Errorf("unsupported geometry type %q", g.Type)
	}
}

// largestRing picks the largest-area ring across all polygons of the
// feature as the contiguity boundary (same policy as the shapefile loader).
func largestRing(multi [][][][2]float64) (geom.Polygon, error) {
	var best geom.Ring
	bestArea := -1.0
	for _, rings := range multi {
		for _, raw := range rings {
			ring := make(geom.Ring, 0, len(raw))
			for _, c := range raw {
				ring = append(ring, geom.Point{X: c[0], Y: c[1]})
			}
			if len(ring) > 1 && ring[0] == ring[len(ring)-1] {
				ring = ring[:len(ring)-1]
			}
			if a := ring.Area(); a > bestArea {
				best, bestArea = ring, a
			}
		}
	}
	if len(best) < 3 {
		return geom.Polygon{}, fmt.Errorf("no usable ring")
	}
	return geom.Polygon{Outer: best}, nil
}
