package geojson

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"emp/internal/census"
	"emp/internal/data"
	"emp/internal/geom"
)

func TestWriteReadRoundTrip(t *testing.T) {
	ds, err := census.Generate(census.Options{Name: "gj", Areas: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	assignment := make([]int, ds.N())
	for i := range assignment {
		assignment[i] = i % 5
	}
	assignment[0] = -1

	var buf bytes.Buffer
	if err := Write(&buf, ds, assignment); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"FeatureCollection"`) || !strings.Contains(out, `"region"`) {
		t.Error("missing FeatureCollection or region property")
	}

	back, err := Read(strings.NewReader(out), "back", geom.Rook)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() {
		t.Fatalf("N = %d, want %d", back.N(), ds.N())
	}
	// Adjacency survives because coordinates round-trip through JSON
	// numbers exactly (encoding/json preserves float64).
	for i := range ds.Adjacency {
		if len(back.Adjacency[i]) != len(ds.Adjacency[i]) {
			t.Errorf("adjacency differs at %d: %v vs %v", i, back.Adjacency[i], ds.Adjacency[i])
		}
	}
	orig := ds.Column(census.AttrTotalPop)
	got := back.Column(census.AttrTotalPop)
	if got == nil {
		t.Fatalf("TOTALPOP column lost; have %v", back.AttrNames)
	}
	for i := range orig {
		if math.Abs(orig[i]-got[i]) > 1e-9 {
			t.Errorf("TOTALPOP[%d] = %v, want %v", i, got[i], orig[i])
			break
		}
	}
}

func TestWriteWithoutAssignment(t *testing.T) {
	ds, err := census.Generate(census.Options{Name: "gj", Areas: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ds, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"region"`) {
		t.Error("region property present without assignment")
	}
}

func TestWriteErrors(t *testing.T) {
	ds, err := census.Generate(census.Options{Name: "gj", Areas: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ds, []int{1, 2}); err == nil {
		t.Error("short assignment accepted")
	}
	bare := data.New("bare", 1)
	if err := Write(&buf, bare, nil); err == nil {
		t.Error("polygon-less dataset accepted")
	}
}

func TestReadMultiPolygon(t *testing.T) {
	in := `{
	  "type": "FeatureCollection",
	  "features": [
	    {"type":"Feature","geometry":{"type":"MultiPolygon","coordinates":
	      [[[[0,0],[1,0],[1,1],[0,1],[0,0]]],[[[5,5],[5.1,5],[5.1,5.1],[5,5.1],[5,5]]]]},
	     "properties":{"POP": 7}},
	    {"type":"Feature","geometry":{"type":"Polygon","coordinates":
	      [[[1,0],[2,0],[2,1],[1,1],[1,0]]]},
	     "properties":{"POP": 9}}
	  ]}`
	ds, err := Read(strings.NewReader(in), "mp", geom.Rook)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 {
		t.Fatalf("N = %d", ds.N())
	}
	// The larger ring of the MultiPolygon (unit square) shares an edge
	// with the second feature.
	if len(ds.Adjacency[0]) != 1 || ds.Adjacency[0][0] != 1 {
		t.Errorf("adjacency = %v", ds.Adjacency)
	}
	if got := ds.Column("POP"); got[0] != 7 || got[1] != 9 {
		t.Errorf("POP = %v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"wrong type":      `{"type":"Feature","features":[]}`,
		"no features":     `{"type":"FeatureCollection","features":[]}`,
		"bad geometry":    `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":[1,2]},"properties":{}}]}`,
		"degenerate ring": `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[1,1]]]},"properties":{}}]}`,
		"bad coords":      `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Polygon","coordinates":"x"},"properties":{}}]}`,
		"missing prop": `{"type":"FeatureCollection","features":[
		  {"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,0]]]},"properties":{"A":1}},
		  {"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[1,0],[2,0],[2,1],[1,0]]]},"properties":{}}]}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(in), "x", geom.Rook); err == nil {
				t.Error("accepted invalid input")
			}
		})
	}
}

func TestReadSkipsIDAndRegionProps(t *testing.T) {
	in := `{"type":"FeatureCollection","features":[
	  {"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,1],[0,0]]]},
	   "properties":{"id":0,"region":2,"POP":5}}]}`
	ds, err := Read(strings.NewReader(in), "x", geom.Rook)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Column("id") != nil || ds.Column("region") != nil {
		t.Error("id/region should not become attribute columns")
	}
	if ds.Column("POP") == nil {
		t.Error("POP column missing")
	}
}
