package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emp/internal/constraint"
	"emp/internal/data"
	"emp/internal/geom"
)

// multiPartition builds a partition over a dataset with two dissimilarity
// attributes.
func multiPartition(t testing.TB, seed int64) *Partition {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	polys := geom.Lattice(geom.LatticeOptions{Cols: 5, Rows: 4})
	ds := data.FromPolygons("md", polys, geom.Rook)
	n := 20
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(rng.Intn(100))
		b[i] = float64(rng.Intn(1000)) // different scale
	}
	if err := ds.AddColumn("A", a); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddColumn("B", b); err != nil {
		t.Fatal(err)
	}
	ds.DissimilarityAttrs = []string{"A", "B"}
	ev, err := constraint.NewEvaluator(constraint.Set{}, ds.Column)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition(ds, ev)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMultivariateHeteroInvariants: incremental H under multivariate
// dissimilarity survives arbitrary valid mutations (Validate recomputes and
// compares).
func TestMultivariateHeteroInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := multiPartition(t, seed)
		for op := 0; op < 30; op++ {
			switch rng.Intn(3) {
			case 0:
				ua := p.UnassignedAreas()
				if len(ua) > 0 {
					p.NewRegion(ua[rng.Intn(len(ua))])
				}
			case 1:
				ids := p.RegionIDs()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				for _, a := range p.UnassignedAreas() {
					if p.AdjacentToRegion(a, id) {
						p.AddArea(id, a)
						break
					}
				}
			case 2:
				ids := p.RegionIDs()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				nbs := p.NeighborRegions(id)
				if len(nbs) > 0 {
					p.MergeRegions(id, nbs[0])
				}
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestMultivariateDeltaMatchesMove: HeteroDeltaMove equals the actual H
// change under multivariate dissimilarity.
func TestMultivariateDeltaMatchesMove(t *testing.T) {
	p := multiPartition(t, 7)
	var left, right []int
	for i := 0; i < 20; i++ {
		if i%5 < 2 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	r1 := p.NewRegion(left...)
	r2 := p.NewRegion(right...)
	border := p.BorderAreasBetween(r1.ID, r2.ID)
	if len(border) == 0 {
		t.Fatal("no border")
	}
	a := border[0]
	delta := p.HeteroDeltaMove(a, r2.ID)
	before := p.Heterogeneity()
	p.MoveArea(a, r2.ID)
	after := p.Heterogeneity()
	if math.Abs((after-before)-delta) > 1e-9 {
		t.Errorf("delta %g != actual %g", delta, after-before)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}
