package region

import (
	"sync"

	"emp/internal/constraint"
	"emp/internal/data"
	"emp/internal/graph"
)

// Shared bundles the immutable per-dataset solver state — dissimilarity
// matrix, heterogeneity rank kernel, contiguity graph — together with
// concurrency-safe pools of the mutable scratch that partitions burn
// through (graph traversal scratch, Fenwick trees). Building it once per
// dataset and handing it to every partition removes the dominant setup cost
// of multi-start and sharded solves: NewPartition recomputes the matrix and
// re-sorts the kernel ranks on every call, Shared does both exactly once.
//
// A Shared is safe for concurrent use by partitions on different
// goroutines; the immutable parts are read-only and the pools are
// sync.Pools.
type Shared struct {
	ds  *data.Dataset
	g   *graph.Graph
	dis [][]float64
	krn *heteroKernel

	// fens pools regionFen trees across partitions; trees are returned by
	// Partition.Recycle and zeroed on reuse.
	fens sync.Pool
	// scratches pools graph traversal scratch across partitions.
	scratches sync.Pool
}

// NewShared builds the shared solver state for the dataset. The dataset's
// dissimilarity configuration must be valid; adjacency must not change
// afterwards.
func NewShared(ds *data.Dataset) (*Shared, error) {
	dis, err := ds.DissimilarityMatrix()
	if err != nil {
		return nil, err
	}
	return &Shared{
		ds:  ds,
		g:   ds.Graph(),
		dis: dis,
		krn: newHeteroKernel(dis),
	}, nil
}

// Dataset returns the dataset the shared state was built from.
func (sh *Shared) Dataset() *data.Dataset { return sh.ds }

// Graph returns the contiguity graph.
func (sh *Shared) Graph() *graph.Graph { return sh.g }

// getScratch takes a traversal scratch from the pool, making a fresh one
// when the pool is empty.
func (sh *Shared) getScratch() *graph.Scratch {
	if s, _ := sh.scratches.Get().(*graph.Scratch); s != nil {
		return s
	}
	return sh.g.NewScratch()
}

// NewPartitionShared creates an empty partition backed by the shared state:
// the dissimilarity matrix and rank kernel are reused instead of rebuilt,
// and scratch/Fenwick state is drawn from (and returnable to) the shared
// pools. The partition behaves identically to one from NewPartition on the
// same dataset.
func NewPartitionShared(sh *Shared, ev *constraint.Evaluator) *Partition {
	assign := make([]int, sh.ds.N())
	for i := range assign {
		assign[i] = Unassigned
	}
	return &Partition{
		ds:       sh.ds,
		g:        sh.g,
		ev:       ev,
		dis:      sh.dis,
		assign:   assign,
		nextID:   1,
		krn:      sh.krn,
		kernelOn: true,
		shared:   sh,
		scratch:  sh.getScratch(),
	}
}

// PartitionFromRegionsShared is PartitionFromRegions on shared state: it
// builds a partition from explicit member lists (ids 1..len in list order)
// without recomputing the per-dataset structures.
func PartitionFromRegionsShared(sh *Shared, ev *constraint.Evaluator, regions [][]int) (*Partition, error) {
	p := NewPartitionShared(sh, ev)
	if err := p.fillRegions(regions); err != nil {
		p.Recycle()
		return nil, err
	}
	return p, nil
}

// Recycle returns the partition's poolable state — Fenwick trees and graph
// scratch — to the Shared pools and invalidates the partition. Call it on
// partitions that lost a best-of selection or served as intermediates; it
// is a no-op for partitions created without shared state. The partition
// must not be used afterwards.
func (p *Partition) Recycle() {
	if p.shared == nil {
		return
	}
	for _, r := range p.regs {
		if r != nil && r.fen != nil {
			p.shared.fens.Put(r.fen)
			r.fen = nil
		}
	}
	for _, f := range p.fenPool {
		p.shared.fens.Put(f)
	}
	p.fenPool = nil
	if p.scratch != nil {
		p.shared.scratches.Put(p.scratch)
		p.scratch = nil
	}
	p.regs, p.freeRegs, p.assign = nil, nil, nil
	p.numRegions = 0
}
