// Package region provides the mutable partition model shared by the FaCT
// construction phase, the Tabu local search, and the MP-regions baseline:
// regions with incrementally maintained constraint aggregates, the
// area-to-region assignment, contiguity checks, and the heterogeneity
// objective H(P).
package region

import (
	"fmt"
	"math"
	"sort"

	"emp/internal/constraint"
	"emp/internal/data"
	"emp/internal/graph"
)

// Region is one output region: a set of areas plus the incremental
// aggregate state used to validate the user-defined constraints.
type Region struct {
	// ID is the region identifier, unique within its Partition.
	ID int
	// Members lists the area ids in insertion order.
	Members []int
	// Tracker holds the constraint aggregates of the member areas.
	Tracker *constraint.Tracker
	// Hetero is the internal heterogeneity: sum of |d_i - d_j| over
	// member pairs.
	Hetero float64
	// epoch counts mutations of this region (member additions, removals,
	// merges). Consumers cache per-region derived state (e.g. removability
	// of members) keyed by (ID, epoch).
	epoch int
	// fen is the region's Fenwick heterogeneity index, or nil while the
	// region is below the build threshold (then the naive scan is used).
	fen *regionFen
}

// Version returns the region's mutation epoch. It changes whenever the
// member set changes, so (ID, Version) keys cached derived state. A region
// with at least one member always has Version >= 1, so 0 can mean "unseen"
// in id-indexed caches.
func (r *Region) Version() int { return r.epoch }

// Size returns the number of member areas.
func (r *Region) Size() int { return len(r.Members) }

// Unassigned marks areas not assigned to any region.
const Unassigned = -1

// Partition is a mutable assignment of areas to regions over a fixed
// dataset and constraint evaluator. The zero value is not usable; create
// with NewPartition.
type Partition struct {
	ds     *data.Dataset
	g      *graph.Graph
	ev     *constraint.Evaluator
	dis    [][]float64 // one row per dissimilarity attribute
	assign []int
	// regs is the region table indexed by region id (nil = no region with
	// that id). Ids are issued monotonically and never reused, so the table
	// only grows; iterating it ascending visits regions in ascending-id
	// order with no sort and no allocation.
	regs       []*Region
	numRegions int
	// freeRegs recycles deleted Region shells (member capacity + tracker
	// arrays) for subsequent NewRegion calls. The shells keep no identity:
	// ids are still issued fresh from nextID.
	freeRegs []*Region
	nextID   int

	// krn is the immutable rank structure of the heterogeneity kernel
	// (shared across clones); kernelOn gates the O(log n) path so the
	// naive O(|R|) fallback stays available for differential testing.
	krn      *heteroKernel
	kernelOn bool
	fenPool  []*regionFen
	// shared, when non-nil, is the cross-partition pool state this
	// partition draws scratch and Fenwick trees from; see Shared and
	// Recycle.
	shared *Shared
	// scratch backs allocation-free contiguity and articulation queries.
	// It makes Partition methods non-reentrant; a Partition was already
	// not safe for concurrent use.
	scratch *graph.Scratch
	// stats accumulates hot-path telemetry as plain ints (the partition is
	// single-goroutine); see PartitionStats and FlushObs.
	stats PartitionStats
}

// NewPartition creates an empty partition (all areas unassigned) for the
// dataset under the evaluator's constraint set. The dataset's dissimilarity
// column drives heterogeneity; it must be configured.
func NewPartition(ds *data.Dataset, ev *constraint.Evaluator) (*Partition, error) {
	dis, err := ds.DissimilarityMatrix()
	if err != nil {
		return nil, err
	}
	assign := make([]int, ds.N())
	for i := range assign {
		assign[i] = Unassigned
	}
	g := ds.Graph()
	return &Partition{
		ds:       ds,
		g:        g,
		ev:       ev,
		dis:      dis,
		assign:   assign,
		nextID:   1,
		krn:      newHeteroKernel(dis),
		kernelOn: true,
		scratch:  g.NewScratch(),
	}, nil
}

// SetHeteroKernel enables or disables the O(log n) incremental
// heterogeneity kernel. It is on by default; turning it off forces every
// heterogeneity update and delta onto the naive O(|R|) member scan, which is
// the reference implementation for differential testing. Existing indexes
// are dropped when disabling and rebuilt lazily when re-enabling.
func (p *Partition) SetHeteroKernel(on bool) {
	p.kernelOn = on
	for _, r := range p.regs {
		if r == nil {
			continue
		}
		if !on {
			p.releaseFen(r.fen)
			r.fen = nil
		} else {
			p.maybeBuildFen(r)
		}
	}
}

// HeteroKernelEnabled reports whether the incremental kernel is active.
func (p *Partition) HeteroKernelEnabled() bool { return p.kernelOn }

// maybeBuildFen builds the region's Fenwick index when the kernel is on,
// none exists yet, and the region is large enough to profit.
func (p *Partition) maybeBuildFen(r *Region) {
	if !p.kernelOn || r.fen != nil || len(r.Members) < p.krn.minFen {
		return
	}
	f := p.acquireFen()
	for _, a := range r.Members {
		p.krn.add(f, a)
	}
	r.fen = f
	p.stats.FenwickBuilds++
}

// regionAbsDiff returns Σ_m Σ_attr |d_attr(area) − d_attr(m)| over the
// region's members, through the Fenwick index when built (O(attrs·log n)) or
// the naive scan otherwise. The area's own self-term, when it is a member,
// is zero under both paths.
func (p *Partition) regionAbsDiff(r *Region, area int) float64 {
	if r.fen != nil {
		p.stats.KernelQueries++
		return p.krn.query(r.fen, area)
	}
	p.stats.NaiveScans++
	return p.sumAbsDiff(area, r.Members)
}

// Dataset returns the underlying dataset.
func (p *Partition) Dataset() *data.Dataset { return p.ds }

// Graph returns the contiguity graph.
func (p *Partition) Graph() *graph.Graph { return p.g }

// Evaluator returns the constraint evaluator.
func (p *Partition) Evaluator() *constraint.Evaluator { return p.ev }

// NumRegions returns p, the number of regions.
func (p *Partition) NumRegions() int { return p.numRegions }

// Assignment returns the region id of the area, or Unassigned.
func (p *Partition) Assignment(area int) int { return p.assign[area] }

// Region returns the region with the given id, or nil.
func (p *Partition) Region(id int) *Region {
	if id < 0 || id >= len(p.regs) {
		return nil
	}
	return p.regs[id]
}

// RegionIDBound returns an exclusive upper bound on every region id this
// partition has issued (all current and past ids are < bound). Consumers
// size id-indexed caches with it; the bound only grows, since ids are never
// reused.
func (p *Partition) RegionIDBound() int { return p.nextID }

// RegionIDs returns all region ids in ascending order.
func (p *Partition) RegionIDs() []int {
	ids := make([]int, 0, p.numRegions)
	for id, r := range p.regs {
		if r != nil {
			ids = append(ids, id)
		}
	}
	return ids
}

// DenseAssignment returns the per-area assignment with region ids densified
// to 0..p-1 in ascending-id order and -1 for unassigned areas — the shape
// warm starts and checkpoints use, independent of the sparse ids this
// partition happened to issue.
func (p *Partition) DenseAssignment() []int {
	idx := make(map[int]int, p.numRegions)
	n := 0
	for id, r := range p.regs {
		if r != nil {
			idx[id] = n
			n++
		}
	}
	out := make([]int, len(p.assign))
	for a, id := range p.assign {
		if id == Unassigned {
			out[a] = -1
		} else {
			out[a] = idx[id]
		}
	}
	return out
}

// UnassignedAreas returns the areas not assigned to any region, ascending.
func (p *Partition) UnassignedAreas() []int {
	var out []int
	for a, r := range p.assign {
		if r == Unassigned {
			out = append(out, a)
		}
	}
	return out
}

// UnassignedCount returns |U0|.
func (p *Partition) UnassignedCount() int {
	c := 0
	for _, r := range p.assign {
		if r == Unassigned {
			c++
		}
	}
	return c
}

// insertRegion installs a region in the table at its id.
func (p *Partition) insertRegion(r *Region) {
	for len(p.regs) <= r.ID {
		p.regs = append(p.regs, nil)
	}
	p.regs[r.ID] = r
	p.numRegions++
}

// deleteRegion removes the region from the table and parks its shell on the
// free-list for reuse. The caller must have released r.fen already.
func (p *Partition) deleteRegion(r *Region) {
	p.regs[r.ID] = nil
	p.numRegions--
	p.freeRegs = append(p.freeRegs, r)
}

// NewRegion creates a region from the given unassigned areas and returns it.
// It panics if any area is already assigned — callers own that invariant.
func (p *Partition) NewRegion(areas ...int) *Region {
	var r *Region
	if n := len(p.freeRegs); n > 0 {
		r = p.freeRegs[n-1]
		p.freeRegs = p.freeRegs[:n-1]
		r.ID = p.nextID
		r.Members = r.Members[:0]
		r.Hetero = 0
		r.epoch = 0
		r.Tracker.Reset()
	} else {
		r = &Region{ID: p.nextID, Tracker: p.ev.NewTracker()}
	}
	p.nextID++
	p.insertRegion(r)
	for _, a := range areas {
		p.addAreaTo(r, a)
	}
	return r
}

// AddArea assigns an unassigned area to the region.
func (p *Partition) AddArea(regionID, area int) {
	r := p.Region(regionID)
	if r == nil {
		panic(fmt.Sprintf("region: AddArea to unknown region %d", regionID))
	}
	p.addAreaTo(r, area)
}

func (p *Partition) addAreaTo(r *Region, area int) {
	if p.assign[area] != Unassigned {
		panic(fmt.Sprintf("region: area %d already assigned to region %d", area, p.assign[area]))
	}
	r.Hetero += p.regionAbsDiff(r, area)
	r.Members = append(r.Members, area)
	if r.fen != nil {
		p.krn.add(r.fen, area)
	} else {
		p.maybeBuildFen(r)
	}
	r.epoch++
	r.Tracker.Add(area)
	p.assign[area] = r.ID
}

// RemoveArea unassigns an area from its region. Removing the last member
// deletes the region. Contiguity of the remainder is the caller's concern
// (see CanRemove).
func (p *Partition) RemoveArea(area int) {
	id := p.assign[area]
	if id == Unassigned {
		panic(fmt.Sprintf("region: area %d is not assigned", area))
	}
	r := p.regs[id]
	idx := -1
	for i, a := range r.Members {
		if a == area {
			idx = i
			break
		}
	}
	r.Members[idx] = r.Members[len(r.Members)-1]
	r.Members = r.Members[:len(r.Members)-1]
	r.Tracker.Remove(area, r.Members)
	if r.fen != nil {
		p.krn.remove(r.fen, area)
	}
	r.Hetero -= p.regionAbsDiff(r, area)
	r.epoch++
	p.assign[area] = Unassigned
	if len(r.Members) == 0 {
		p.releaseFen(r.fen)
		r.fen = nil
		p.deleteRegion(r)
	}
}

// DissolveRegion unassigns every member of the region and deletes it.
func (p *Partition) DissolveRegion(regionID int) {
	r := p.Region(regionID)
	if r == nil {
		return
	}
	for _, a := range r.Members {
		p.assign[a] = Unassigned
	}
	p.releaseFen(r.fen)
	r.fen = nil
	p.deleteRegion(r)
}

// MergeRegions folds region srcID into dstID, keeping dstID. The merged
// region's members, tracker and heterogeneity are updated incrementally.
func (p *Partition) MergeRegions(dstID, srcID int) {
	if dstID == srcID {
		return
	}
	dst, src := p.Region(dstID), p.Region(srcID)
	if dst == nil || src == nil {
		panic(fmt.Sprintf("region: merge %d <- %d with unknown region", dstID, srcID))
	}
	// Cross heterogeneity between the two groups: one kernel query per
	// src member against dst (O(|src| log n)) instead of O(|src|·|dst|).
	var cross float64
	for _, a := range src.Members {
		cross += p.regionAbsDiff(dst, a)
	}
	dst.Hetero += src.Hetero + cross
	for _, a := range src.Members {
		p.assign[a] = dstID
	}
	dst.Members = append(dst.Members, src.Members...)
	if dst.fen != nil {
		for _, a := range src.Members {
			p.krn.add(dst.fen, a)
		}
	} else {
		p.maybeBuildFen(dst)
	}
	dst.epoch++
	dst.Tracker.Merge(src.Tracker)
	p.releaseFen(src.fen)
	src.fen = nil
	p.deleteRegion(src)
}

// MoveArea transfers an area from its current region to another existing
// region, updating aggregates and heterogeneity incrementally. Callers must
// ensure validity (donor contiguity, constraint satisfaction) beforehand.
func (p *Partition) MoveArea(area, toRegionID int) {
	p.RemoveArea(area)
	p.AddArea(toRegionID, area)
}

// sumAbsDiff returns the summed pairwise dissimilarity between the area and
// the members: Σ_m Σ_attr |d_attr(area) − d_attr(m)| (single-attribute H in
// the common case, Manhattan multivariate otherwise).
func (p *Partition) sumAbsDiff(area int, members []int) float64 {
	var s float64
	for _, row := range p.dis {
		da := row[area]
		for _, m := range members {
			s += math.Abs(da - row[m])
		}
	}
	return s
}

// PairDissimilarity returns the dissimilarity contribution of one area pair:
// Σ_attr |d_attr(a) − d_attr(b)|. It is the unit term of region
// heterogeneity, letting callers adjust a cached Σ_m |d_x − d_m| by a single
// member's arrival or departure in O(attrs).
func (p *Partition) PairDissimilarity(a, b int) float64 {
	return p.krn.pairDiff(a, b)
}

// Heterogeneity returns H(P): the sum of internal heterogeneity over all
// regions (Equation 1 of the paper). The region table is id-ordered, so the
// float result is identical run-to-run for the same partition with no sort
// and no allocation.
func (p *Partition) Heterogeneity() float64 {
	var h float64
	for _, r := range p.regs {
		if r != nil {
			h += r.Hetero
		}
	}
	return h
}

// HeteroDeltaMove returns the change in H(P) if area moved from its current
// region to the target region, without mutating the partition. With the
// kernel on both sides cost O(attrs·log n); the area's self-term in its own
// region is zero, so no member needs to be excluded explicitly.
func (p *Partition) HeteroDeltaMove(area, toRegionID int) float64 {
	from := p.regs[p.assign[area]]
	to := p.regs[toRegionID]
	loss := p.regionAbsDiff(from, area)
	gain := p.regionAbsDiff(to, area)
	return gain - loss
}

// HeteroLoss returns the drop in the donor region's heterogeneity if the
// area left its current region — the donor half of HeteroDeltaMove. Paired
// with HeteroGain it lets callers evaluating one donor against many targets
// compute the loss once: DeltaMove(a, to) == HeteroGain(a, to) −
// HeteroLoss(a) with bitwise-identical results.
func (p *Partition) HeteroLoss(area int) float64 {
	return p.regionAbsDiff(p.regs[p.assign[area]], area)
}

// HeteroGain returns the rise in the target region's heterogeneity if the
// area joined it — the target half of HeteroDeltaMove.
func (p *Partition) HeteroGain(area, toRegionID int) float64 {
	return p.regionAbsDiff(p.regs[toRegionID], area)
}

// RegionConnected reports whether the region's members induce a connected
// subgraph.
func (p *Partition) RegionConnected(regionID int) bool {
	r := p.Region(regionID)
	if r == nil {
		return false
	}
	return p.g.ConnectedSubset(r.Members)
}

// CanRemove reports whether removing the area keeps its region connected
// (or empties it). Single-member regions can always lose their member.
func (p *Partition) CanRemove(area int) bool {
	id := p.assign[area]
	if id == Unassigned {
		return false
	}
	r := p.regs[id]
	return p.g.ConnectedSubsetExcludingScratch(p.scratch, r.Members, area)
}

// RemovableMembers returns, parallel to the region's Members, whether each
// member can be removed without disconnecting the rest — the donor-side
// contiguity check of swap moves, answered for the whole region in one
// articulation-point pass (O(|R| + induced edges)) instead of one BFS per
// member. The result is a reusable scratch buffer: it is valid until the
// partition's next contiguity or removability query, and callers cache it
// keyed by (regionID, Version()) only after copying.
func (p *Partition) RemovableMembers(regionID int) []bool {
	r := p.Region(regionID)
	if r == nil {
		return nil
	}
	art := p.g.SubsetArticulation(p.scratch, r.Members)
	for i := range art {
		art[i] = !art[i]
	}
	return art
}

// RemovableAndBoundary is RemovableMembers extended to also report the
// region's boundary in the same traversal: bu/bv list every incidence from a
// member (bu) to an area outside the region (bv) — including unassigned
// areas — one entry per adjacency. Local-search refresh uses it to discover
// affected areas and removability verdicts in a single pass over the region
// instead of two. All returned slices are reusable scratch buffers valid
// until the partition's next contiguity or removability query.
func (p *Partition) RemovableAndBoundary(regionID int) (removable []bool, bu, bv []int32) {
	r := p.Region(regionID)
	if r == nil {
		return nil, nil, nil
	}
	art, bu, bv := p.g.SubsetArticulationBoundary(p.scratch, r.Members)
	for i := range art {
		art[i] = !art[i]
	}
	return art, bu, bv
}

// AdjacentToRegion reports whether the area has at least one neighbor in
// the region.
func (p *Partition) AdjacentToRegion(area, regionID int) bool {
	for _, nb := range p.g.Neighbors(area) {
		if p.assign[nb] == regionID {
			return true
		}
	}
	return false
}

// NeighborRegions returns the ids of regions adjacent to the given region
// (sharing at least one boundary edge), ascending.
func (p *Partition) NeighborRegions(regionID int) []int {
	r := p.Region(regionID)
	if r == nil {
		return nil
	}
	seen := make(map[int]bool)
	for _, a := range r.Members {
		for _, nb := range p.g.Neighbors(a) {
			id := p.assign[nb]
			if id != Unassigned && id != regionID && !seen[id] {
				seen[id] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// BoundaryAreas returns the member areas of the region that have at least
// one neighbor outside it (unassigned or in another region), ascending.
func (p *Partition) BoundaryAreas(regionID int) []int {
	r := p.Region(regionID)
	if r == nil {
		return nil
	}
	var out []int
	for _, a := range r.Members {
		for _, nb := range p.g.Neighbors(a) {
			if p.assign[nb] != regionID {
				out = append(out, a)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// BorderAreasBetween returns areas of region fromID adjacent to region toID,
// ascending — the swap candidates of Step 3 and the Tabu phase.
func (p *Partition) BorderAreasBetween(fromID, toID int) []int {
	r := p.Region(fromID)
	if r == nil {
		return nil
	}
	var out []int
	for _, a := range r.Members {
		if p.AdjacentToRegion(a, toID) {
			out = append(out, a)
		}
	}
	sort.Ints(out)
	return out
}

// MoveValid reports whether moving the area to the target region keeps the
// solution feasible: the donor region keeps more than one member (so p is
// unchanged), stays contiguous and satisfies every constraint after the
// removal, the area is adjacent to the target region, and the target
// satisfies every constraint after the addition.
func (p *Partition) MoveValid(area, toRegionID int) bool {
	fromID := p.assign[area]
	if fromID == Unassigned || fromID == toRegionID {
		return false
	}
	to := p.Region(toRegionID)
	if to == nil {
		return false
	}
	from := p.regs[fromID]
	if len(from.Members) <= 1 {
		return false
	}
	if !p.AdjacentToRegion(area, toRegionID) {
		return false
	}
	if !p.g.ConnectedSubsetExcludingScratch(p.scratch, from.Members, area) {
		return false
	}
	if !from.Tracker.SatisfiedAllAfterRemove(area, from.Members) {
		return false
	}
	return to.Tracker.SatisfiedAllAfterAdd(area)
}

// AllSatisfied reports whether every region satisfies every constraint.
func (p *Partition) AllSatisfied() bool {
	for _, r := range p.regs {
		if r != nil && !r.Tracker.SatisfiedAll() {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the partition sharing the immutable dataset,
// graph, evaluator and (when present) the Shared pool state.
func (p *Partition) Clone() *Partition {
	c := &Partition{
		ds:         p.ds,
		g:          p.g,
		ev:         p.ev,
		dis:        p.dis,
		assign:     append([]int(nil), p.assign...),
		regs:       make([]*Region, len(p.regs)),
		numRegions: p.numRegions,
		nextID:     p.nextID,
		krn:        p.krn,
		kernelOn:   p.kernelOn,
		shared:     p.shared,
	}
	if p.shared != nil {
		c.scratch = p.shared.getScratch()
	} else {
		c.scratch = p.g.NewScratch()
	}
	for id, r := range p.regs {
		if r == nil {
			continue
		}
		cr := &Region{
			ID:      r.ID,
			Members: append([]int(nil), r.Members...),
			Tracker: r.Tracker.Clone(),
			Hetero:  r.Hetero,
			epoch:   r.epoch,
		}
		// Fenwick trees are per-partition state: rebuild rather than
		// deep-copy so the pool stays private to each clone.
		c.maybeBuildFen(cr)
		c.regs[id] = cr
	}
	return c
}

// Validate checks all partition invariants; it is meant for tests and
// debugging, not hot paths:
//   - assignment vector and region member lists agree,
//   - regions are disjoint and non-empty,
//   - every region is spatially contiguous,
//   - trackers and heterogeneity match naive recomputation.
func (p *Partition) Validate() error {
	count := 0
	seen := make(map[int]int) // area -> region id
	for id, r := range p.regs {
		if r == nil {
			continue
		}
		count++
		if id != r.ID {
			return fmt.Errorf("region: table slot %d != region id %d", id, r.ID)
		}
		if len(r.Members) == 0 {
			return fmt.Errorf("region: region %d is empty", id)
		}
		for _, a := range r.Members {
			if prev, dup := seen[a]; dup {
				return fmt.Errorf("region: area %d in regions %d and %d", a, prev, id)
			}
			seen[a] = id
			if p.assign[a] != id {
				return fmt.Errorf("region: area %d assigned to %d but in region %d members", a, p.assign[a], id)
			}
		}
		if !p.g.ConnectedSubset(r.Members) {
			return fmt.Errorf("region: region %d is not contiguous", id)
		}
		want := p.ev.Compute(r.Members)
		for i := 0; i < p.ev.Len(); i++ {
			got, exp := r.Tracker.Value(i), want.Value(i)
			if math.Abs(got-exp) > 1e-6 && !(math.IsNaN(got) && math.IsNaN(exp)) {
				return fmt.Errorf("region: region %d constraint %d tracker %g != recompute %g", id, i, got, exp)
			}
		}
		var h float64
		for _, row := range p.dis {
			for i := 0; i < len(r.Members); i++ {
				for j := i + 1; j < len(r.Members); j++ {
					h += math.Abs(row[r.Members[i]] - row[r.Members[j]])
				}
			}
		}
		if math.Abs(h-r.Hetero) > 1e-6*(1+math.Abs(h)) {
			return fmt.Errorf("region: region %d heterogeneity %g != recompute %g", id, r.Hetero, h)
		}
	}
	if count != p.numRegions {
		return fmt.Errorf("region: table holds %d regions but counter says %d", count, p.numRegions)
	}
	for a, id := range p.assign {
		if id == Unassigned {
			continue
		}
		if got, ok := seen[a]; !ok || got != id {
			return fmt.Errorf("region: area %d assigned to %d but not a member", a, id)
		}
	}
	return nil
}

// PartitionFromRegions builds a partition from explicit region member lists,
// assigning region ids 1..len(regions) in list order. Areas absent from every
// list stay unassigned. Unlike NewRegion it validates instead of panicking:
// out-of-range and doubly-assigned areas return an error. It is the merge
// primitive of the sharded solve pipeline, where per-component solutions are
// folded back into one global partition in a deterministic order.
func PartitionFromRegions(ds *data.Dataset, ev *constraint.Evaluator, regions [][]int) (*Partition, error) {
	p, err := NewPartition(ds, ev)
	if err != nil {
		return nil, err
	}
	if err := p.fillRegions(regions); err != nil {
		return nil, err
	}
	return p, nil
}

// fillRegions seeds the empty partition with the given member lists,
// validating instead of panicking.
func (p *Partition) fillRegions(regions [][]int) error {
	n := p.ds.N()
	for ri, members := range regions {
		if len(members) == 0 {
			return fmt.Errorf("region: region list %d is empty", ri)
		}
		seen := make(map[int]bool, len(members))
		for _, a := range members {
			if a < 0 || a >= n {
				return fmt.Errorf("region: region list %d has out-of-range area %d", ri, a)
			}
			if id := p.assign[a]; id != Unassigned {
				return fmt.Errorf("region: area %d in region lists %d and %d", a, id-1, ri)
			}
			if seen[a] {
				return fmt.Errorf("region: region list %d repeats area %d", ri, a)
			}
			seen[a] = true
		}
		p.NewRegion(members...)
	}
	return nil
}

// Summary captures the headline numbers of a solution.
type Summary struct {
	P             int
	UnassignedLen int
	Heterogeneity float64
}

// Summarize returns the partition's summary.
func (p *Partition) Summarize() Summary {
	return Summary{
		P:             p.NumRegions(),
		UnassignedLen: p.UnassignedCount(),
		Heterogeneity: p.Heterogeneity(),
	}
}
