// Package region provides the mutable partition model shared by the FaCT
// construction phase, the Tabu local search, and the MP-regions baseline:
// regions with incrementally maintained constraint aggregates, the
// area-to-region assignment, contiguity checks, and the heterogeneity
// objective H(P).
package region

import (
	"fmt"
	"math"
	"sort"

	"emp/internal/constraint"
	"emp/internal/data"
	"emp/internal/graph"
)

// Region is one output region: a set of areas plus the incremental
// aggregate state used to validate the user-defined constraints.
type Region struct {
	// ID is the region identifier, unique within its Partition.
	ID int
	// Members lists the area ids in insertion order.
	Members []int
	// Tracker holds the constraint aggregates of the member areas.
	Tracker *constraint.Tracker
	// Hetero is the internal heterogeneity: sum of |d_i - d_j| over
	// member pairs.
	Hetero float64
}

// Size returns the number of member areas.
func (r *Region) Size() int { return len(r.Members) }

// Unassigned marks areas not assigned to any region.
const Unassigned = -1

// Partition is a mutable assignment of areas to regions over a fixed
// dataset and constraint evaluator. The zero value is not usable; create
// with NewPartition.
type Partition struct {
	ds      *data.Dataset
	g       *graph.Graph
	ev      *constraint.Evaluator
	dis     [][]float64 // one row per dissimilarity attribute
	assign  []int
	regions map[int]*Region
	nextID  int
}

// NewPartition creates an empty partition (all areas unassigned) for the
// dataset under the evaluator's constraint set. The dataset's dissimilarity
// column drives heterogeneity; it must be configured.
func NewPartition(ds *data.Dataset, ev *constraint.Evaluator) (*Partition, error) {
	dis, err := ds.DissimilarityMatrix()
	if err != nil {
		return nil, err
	}
	assign := make([]int, ds.N())
	for i := range assign {
		assign[i] = Unassigned
	}
	return &Partition{
		ds:      ds,
		g:       ds.Graph(),
		ev:      ev,
		dis:     dis,
		assign:  assign,
		regions: make(map[int]*Region),
		nextID:  1,
	}, nil
}

// Dataset returns the underlying dataset.
func (p *Partition) Dataset() *data.Dataset { return p.ds }

// Graph returns the contiguity graph.
func (p *Partition) Graph() *graph.Graph { return p.g }

// Evaluator returns the constraint evaluator.
func (p *Partition) Evaluator() *constraint.Evaluator { return p.ev }

// NumRegions returns p, the number of regions.
func (p *Partition) NumRegions() int { return len(p.regions) }

// Assignment returns the region id of the area, or Unassigned.
func (p *Partition) Assignment(area int) int { return p.assign[area] }

// Region returns the region with the given id, or nil.
func (p *Partition) Region(id int) *Region { return p.regions[id] }

// RegionIDs returns all region ids in ascending order.
func (p *Partition) RegionIDs() []int {
	ids := make([]int, 0, len(p.regions))
	for id := range p.regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Unassigned returns the areas not assigned to any region, ascending.
func (p *Partition) UnassignedAreas() []int {
	var out []int
	for a, r := range p.assign {
		if r == Unassigned {
			out = append(out, a)
		}
	}
	return out
}

// UnassignedCount returns |U0|.
func (p *Partition) UnassignedCount() int {
	c := 0
	for _, r := range p.assign {
		if r == Unassigned {
			c++
		}
	}
	return c
}

// NewRegion creates a region from the given unassigned areas and returns it.
// It panics if any area is already assigned — callers own that invariant.
func (p *Partition) NewRegion(areas ...int) *Region {
	r := &Region{ID: p.nextID, Tracker: p.ev.NewTracker()}
	p.nextID++
	p.regions[r.ID] = r
	for _, a := range areas {
		p.addAreaTo(r, a)
	}
	return r
}

// AddArea assigns an unassigned area to the region.
func (p *Partition) AddArea(regionID, area int) {
	r := p.regions[regionID]
	if r == nil {
		panic(fmt.Sprintf("region: AddArea to unknown region %d", regionID))
	}
	p.addAreaTo(r, area)
}

func (p *Partition) addAreaTo(r *Region, area int) {
	if p.assign[area] != Unassigned {
		panic(fmt.Sprintf("region: area %d already assigned to region %d", area, p.assign[area]))
	}
	r.Hetero += p.sumAbsDiff(area, r.Members)
	r.Members = append(r.Members, area)
	r.Tracker.Add(area)
	p.assign[area] = r.ID
}

// RemoveArea unassigns an area from its region. Removing the last member
// deletes the region. Contiguity of the remainder is the caller's concern
// (see CanRemove).
func (p *Partition) RemoveArea(area int) {
	id := p.assign[area]
	if id == Unassigned {
		panic(fmt.Sprintf("region: area %d is not assigned", area))
	}
	r := p.regions[id]
	idx := -1
	for i, a := range r.Members {
		if a == area {
			idx = i
			break
		}
	}
	r.Members[idx] = r.Members[len(r.Members)-1]
	r.Members = r.Members[:len(r.Members)-1]
	r.Tracker.Remove(area, r.Members)
	r.Hetero -= p.sumAbsDiff(area, r.Members)
	p.assign[area] = Unassigned
	if len(r.Members) == 0 {
		delete(p.regions, id)
	}
}

// DissolveRegion unassigns every member of the region and deletes it.
func (p *Partition) DissolveRegion(regionID int) {
	r := p.regions[regionID]
	if r == nil {
		return
	}
	for _, a := range r.Members {
		p.assign[a] = Unassigned
	}
	delete(p.regions, regionID)
}

// MergeRegions folds region srcID into dstID, keeping dstID. The merged
// region's members, tracker and heterogeneity are updated incrementally.
func (p *Partition) MergeRegions(dstID, srcID int) {
	if dstID == srcID {
		return
	}
	dst, src := p.regions[dstID], p.regions[srcID]
	if dst == nil || src == nil {
		panic(fmt.Sprintf("region: merge %d <- %d with unknown region", dstID, srcID))
	}
	// Cross heterogeneity between the two groups.
	var cross float64
	for _, a := range src.Members {
		cross += p.sumAbsDiff(a, dst.Members)
	}
	dst.Hetero += src.Hetero + cross
	for _, a := range src.Members {
		p.assign[a] = dstID
	}
	dst.Members = append(dst.Members, src.Members...)
	dst.Tracker.Merge(src.Tracker)
	delete(p.regions, srcID)
}

// MoveArea transfers an area from its current region to another existing
// region, updating aggregates and heterogeneity incrementally. Callers must
// ensure validity (donor contiguity, constraint satisfaction) beforehand.
func (p *Partition) MoveArea(area, toRegionID int) {
	p.RemoveArea(area)
	p.AddArea(toRegionID, area)
}

// sumAbsDiff returns the summed pairwise dissimilarity between the area and
// the members: Σ_m Σ_attr |d_attr(area) − d_attr(m)| (single-attribute H in
// the common case, Manhattan multivariate otherwise).
func (p *Partition) sumAbsDiff(area int, members []int) float64 {
	var s float64
	for _, row := range p.dis {
		da := row[area]
		for _, m := range members {
			s += math.Abs(da - row[m])
		}
	}
	return s
}

// Heterogeneity returns H(P): the sum of internal heterogeneity over all
// regions (Equation 1 of the paper).
func (p *Partition) Heterogeneity() float64 {
	var h float64
	for _, r := range p.regions {
		h += r.Hetero
	}
	return h
}

// HeteroDeltaMove returns the change in H(P) if area moved from its current
// region to the target region, without mutating the partition.
func (p *Partition) HeteroDeltaMove(area, toRegionID int) float64 {
	from := p.regions[p.assign[area]]
	to := p.regions[toRegionID]
	var loss float64
	for _, row := range p.dis {
		da := row[area]
		for _, m := range from.Members {
			if m != area {
				loss += math.Abs(da - row[m])
			}
		}
	}
	gain := p.sumAbsDiff(area, to.Members)
	return gain - loss
}

// RegionConnected reports whether the region's members induce a connected
// subgraph.
func (p *Partition) RegionConnected(regionID int) bool {
	r := p.regions[regionID]
	if r == nil {
		return false
	}
	return p.g.ConnectedSubset(r.Members)
}

// CanRemove reports whether removing the area keeps its region connected
// (or empties it). Single-member regions can always lose their member.
func (p *Partition) CanRemove(area int) bool {
	id := p.assign[area]
	if id == Unassigned {
		return false
	}
	r := p.regions[id]
	return p.g.ConnectedSubsetExcluding(r.Members, area)
}

// AdjacentToRegion reports whether the area has at least one neighbor in
// the region.
func (p *Partition) AdjacentToRegion(area, regionID int) bool {
	for _, nb := range p.g.Neighbors(area) {
		if p.assign[nb] == regionID {
			return true
		}
	}
	return false
}

// NeighborRegions returns the ids of regions adjacent to the given region
// (sharing at least one boundary edge), ascending.
func (p *Partition) NeighborRegions(regionID int) []int {
	r := p.regions[regionID]
	if r == nil {
		return nil
	}
	seen := make(map[int]bool)
	for _, a := range r.Members {
		for _, nb := range p.g.Neighbors(a) {
			id := p.assign[nb]
			if id != Unassigned && id != regionID && !seen[id] {
				seen[id] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// BoundaryAreas returns the member areas of the region that have at least
// one neighbor outside it (unassigned or in another region), ascending.
func (p *Partition) BoundaryAreas(regionID int) []int {
	r := p.regions[regionID]
	if r == nil {
		return nil
	}
	var out []int
	for _, a := range r.Members {
		for _, nb := range p.g.Neighbors(a) {
			if p.assign[nb] != regionID {
				out = append(out, a)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// BorderAreasBetween returns areas of region fromID adjacent to region toID,
// ascending — the swap candidates of Step 3 and the Tabu phase.
func (p *Partition) BorderAreasBetween(fromID, toID int) []int {
	r := p.regions[fromID]
	if r == nil {
		return nil
	}
	var out []int
	for _, a := range r.Members {
		if p.AdjacentToRegion(a, toID) {
			out = append(out, a)
		}
	}
	sort.Ints(out)
	return out
}

// MoveValid reports whether moving the area to the target region keeps the
// solution feasible: the donor region keeps more than one member (so p is
// unchanged), stays contiguous and satisfies every constraint after the
// removal, the area is adjacent to the target region, and the target
// satisfies every constraint after the addition.
func (p *Partition) MoveValid(area, toRegionID int) bool {
	fromID := p.assign[area]
	if fromID == Unassigned || fromID == toRegionID {
		return false
	}
	to := p.regions[toRegionID]
	if to == nil {
		return false
	}
	from := p.regions[fromID]
	if len(from.Members) <= 1 {
		return false
	}
	if !p.AdjacentToRegion(area, toRegionID) {
		return false
	}
	if !p.g.ConnectedSubsetExcluding(from.Members, area) {
		return false
	}
	if !from.Tracker.SatisfiedAllAfterRemove(area, from.Members) {
		return false
	}
	return to.Tracker.SatisfiedAllAfterAdd(area)
}

// AllSatisfied reports whether every region satisfies every constraint.
func (p *Partition) AllSatisfied() bool {
	for _, r := range p.regions {
		if !r.Tracker.SatisfiedAll() {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the partition sharing the immutable dataset,
// graph and evaluator.
func (p *Partition) Clone() *Partition {
	c := &Partition{
		ds:      p.ds,
		g:       p.g,
		ev:      p.ev,
		dis:     p.dis,
		assign:  append([]int(nil), p.assign...),
		regions: make(map[int]*Region, len(p.regions)),
		nextID:  p.nextID,
	}
	for id, r := range p.regions {
		c.regions[id] = &Region{
			ID:      r.ID,
			Members: append([]int(nil), r.Members...),
			Tracker: r.Tracker.Clone(),
			Hetero:  r.Hetero,
		}
	}
	return c
}

// Validate checks all partition invariants; it is meant for tests and
// debugging, not hot paths:
//   - assignment vector and region member lists agree,
//   - regions are disjoint and non-empty,
//   - every region is spatially contiguous,
//   - trackers and heterogeneity match naive recomputation.
func (p *Partition) Validate() error {
	seen := make(map[int]int) // area -> region id
	for id, r := range p.regions {
		if id != r.ID {
			return fmt.Errorf("region: map key %d != region id %d", id, r.ID)
		}
		if len(r.Members) == 0 {
			return fmt.Errorf("region: region %d is empty", id)
		}
		for _, a := range r.Members {
			if prev, dup := seen[a]; dup {
				return fmt.Errorf("region: area %d in regions %d and %d", a, prev, id)
			}
			seen[a] = id
			if p.assign[a] != id {
				return fmt.Errorf("region: area %d assigned to %d but in region %d members", a, p.assign[a], id)
			}
		}
		if !p.g.ConnectedSubset(r.Members) {
			return fmt.Errorf("region: region %d is not contiguous", id)
		}
		want := p.ev.Compute(r.Members)
		for i := 0; i < p.ev.Len(); i++ {
			got, exp := r.Tracker.Value(i), want.Value(i)
			if math.Abs(got-exp) > 1e-6 && !(math.IsNaN(got) && math.IsNaN(exp)) {
				return fmt.Errorf("region: region %d constraint %d tracker %g != recompute %g", id, i, got, exp)
			}
		}
		var h float64
		for _, row := range p.dis {
			for i := 0; i < len(r.Members); i++ {
				for j := i + 1; j < len(r.Members); j++ {
					h += math.Abs(row[r.Members[i]] - row[r.Members[j]])
				}
			}
		}
		if math.Abs(h-r.Hetero) > 1e-6*(1+math.Abs(h)) {
			return fmt.Errorf("region: region %d heterogeneity %g != recompute %g", id, r.Hetero, h)
		}
	}
	for a, id := range p.assign {
		if id == Unassigned {
			continue
		}
		if got, ok := seen[a]; !ok || got != id {
			return fmt.Errorf("region: area %d assigned to %d but not a member", a, id)
		}
	}
	return nil
}

// Summary captures the headline numbers of a solution.
type Summary struct {
	P             int
	UnassignedLen int
	Heterogeneity float64
}

// Summarize returns the partition's summary.
func (p *Partition) Summarize() Summary {
	return Summary{
		P:             p.NumRegions(),
		UnassignedLen: p.UnassignedCount(),
		Heterogeneity: p.Heterogeneity(),
	}
}
