package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emp/internal/constraint"
	"emp/internal/data"
	"emp/internal/geom"
)

// testPartition builds a 4x3 lattice dataset with POP = area id * 10 and a
// SUM + COUNT constraint set.
func testPartition(t *testing.T, set constraint.Set) (*Partition, *data.Dataset) {
	t.Helper()
	polys := geom.Lattice(geom.LatticeOptions{Cols: 4, Rows: 3})
	ds := data.FromPolygons("t", polys, geom.Rook)
	pop := make([]float64, 12)
	for i := range pop {
		pop[i] = float64(i * 10)
	}
	if err := ds.AddColumn("POP", pop); err != nil {
		t.Fatal(err)
	}
	ds.Dissimilarity = "POP"
	ev, err := constraint.NewEvaluator(set, ds.Column)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition(ds, ev)
	if err != nil {
		t.Fatal(err)
	}
	return p, ds
}

func defaultSet() constraint.Set {
	return constraint.Set{
		constraint.AtLeast(constraint.Sum, "POP", 0),
		constraint.AtLeast(constraint.Count, "", 1),
	}
}

func TestNewPartitionRequiresDissimilarity(t *testing.T) {
	ds := data.New("x", 2)
	ds.Adjacency[0] = []int{1}
	ds.Adjacency[1] = []int{0}
	ev, err := constraint.NewEvaluator(constraint.Set{}, ds.Column)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartition(ds, ev); err == nil {
		t.Error("missing dissimilarity accepted")
	}
}

func TestNewRegionAndAssignment(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	if p.NumRegions() != 0 || p.UnassignedCount() != 12 {
		t.Fatal("fresh partition not empty")
	}
	r := p.NewRegion(0, 1)
	if r.Size() != 2 {
		t.Errorf("Size = %d", r.Size())
	}
	if p.Assignment(0) != r.ID || p.Assignment(1) != r.ID {
		t.Error("assignment not recorded")
	}
	if p.Assignment(2) != Unassigned {
		t.Error("area 2 should be unassigned")
	}
	if p.NumRegions() != 1 {
		t.Errorf("NumRegions = %d", p.NumRegions())
	}
	if p.UnassignedCount() != 10 || len(p.UnassignedAreas()) != 10 {
		t.Error("unassigned bookkeeping wrong")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Tracker reflects members: SUM(POP) = 0 + 10.
	if got := r.Tracker.Value(0); got != 10 {
		t.Errorf("tracker SUM = %v, want 10", got)
	}
}

func TestAddAreaPanicsOnAssigned(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	r1 := p.NewRegion(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic adding assigned area")
		}
	}()
	p.AddArea(r1.ID, 0)
}

func TestRemoveAreaAndRegionDeletion(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	r := p.NewRegion(1, 0, 4) // L-shape; removing 1 keeps {0,4} connected
	p.RemoveArea(1)
	if p.Assignment(1) != Unassigned {
		t.Error("area 1 still assigned")
	}
	if r.Size() != 2 {
		t.Errorf("Size = %d", r.Size())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate after remove: %v", err)
	}
	p.RemoveArea(0)
	p.RemoveArea(4)
	if p.NumRegions() != 0 {
		t.Error("empty region not deleted")
	}
}

func TestRemoveUnassignedPanics(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	defer func() {
		if recover() == nil {
			t.Error("expected panic removing unassigned area")
		}
	}()
	p.RemoveArea(5)
}

func TestDissolveRegion(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	r := p.NewRegion(0, 1, 4)
	p.DissolveRegion(r.ID)
	if p.NumRegions() != 0 || p.UnassignedCount() != 12 {
		t.Error("dissolve did not release areas")
	}
	p.DissolveRegion(999) // no-op
}

func TestMergeRegions(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	// Lattice 4x3: areas 0,1 adjacent; 2,3 adjacent; 1,2 adjacent.
	r1 := p.NewRegion(0, 1)
	r2 := p.NewRegion(2, 3)
	h1, h2 := r1.Hetero, r2.Hetero
	p.MergeRegions(r1.ID, r2.ID)
	if p.NumRegions() != 1 {
		t.Fatal("merge did not delete source")
	}
	if p.Assignment(3) != r1.ID {
		t.Error("merged area not reassigned")
	}
	// Cross pairs: |0-20|+|0-30|+|10-20|+|10-30| = 20+30+10+20 = 80.
	want := h1 + h2 + 80
	if math.Abs(r1.Hetero-want) > 1e-9 {
		t.Errorf("merged hetero = %v, want %v", r1.Hetero, want)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate after merge: %v", err)
	}
	p.MergeRegions(r1.ID, r1.ID) // self merge is a no-op
	if p.NumRegions() != 1 {
		t.Error("self merge changed regions")
	}
}

func TestMergeUnknownPanics(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	r := p.NewRegion(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic merging unknown region")
		}
	}()
	p.MergeRegions(r.ID, 42)
}

func TestMoveAreaAndHeteroDelta(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	r1 := p.NewRegion(0, 1) // POP 0, 10
	r2 := p.NewRegion(2, 3) // POP 20, 30
	// Move area 1 (POP 10) from r1 to r2 (adjacent to 2).
	delta := p.HeteroDeltaMove(1, r2.ID)
	before := p.Heterogeneity()
	p.MoveArea(1, r2.ID)
	after := p.Heterogeneity()
	if math.Abs((after-before)-delta) > 1e-9 {
		t.Errorf("HeteroDeltaMove = %v but actual change = %v", delta, after-before)
	}
	if p.Assignment(1) != r2.ID || r1.Size() != 1 || r2.Size() != 3 {
		t.Error("move bookkeeping wrong")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate after move: %v", err)
	}
}

func TestHeterogeneityMatchesDefinition(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	p.NewRegion(0, 1, 2) // POP 0,10,20: pairs 10+20+10 = 40
	p.NewRegion(4, 5)    // POP 40,50: 10
	if got := p.Heterogeneity(); math.Abs(got-50) > 1e-9 {
		t.Errorf("H(P) = %v, want 50", got)
	}
}

func TestContiguityChecks(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	// 4x3 lattice: region {0,1,2} is a row; removing 1 disconnects.
	r := p.NewRegion(0, 1, 2)
	if !p.RegionConnected(r.ID) {
		t.Error("row region should be connected")
	}
	if p.CanRemove(1) {
		t.Error("removing middle of a path should disconnect")
	}
	if !p.CanRemove(0) || !p.CanRemove(2) {
		t.Error("endpoints should be removable")
	}
	if p.CanRemove(7) {
		t.Error("unassigned area is not removable")
	}
	if p.RegionConnected(999) {
		t.Error("unknown region connected")
	}
	// Disconnected region detected by Validate.
	bad := p.NewRegion(8)
	p.AddArea(bad.ID, 11) // 8 and 11 are not adjacent in a 4x3 lattice
	if err := p.Validate(); err == nil {
		t.Error("Validate should flag non-contiguous region")
	}
}

func TestAdjacencyQueries(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	// Lattice 4x3:
	// 0 1 2 3
	// 4 5 6 7
	// 8 9 10 11
	r1 := p.NewRegion(0, 1)
	r2 := p.NewRegion(2, 3)
	r3 := p.NewRegion(8, 9)
	if !p.AdjacentToRegion(5, r1.ID) {
		t.Error("area 5 is adjacent to region {0,1} via 1")
	}
	if p.AdjacentToRegion(7, r1.ID) {
		t.Error("area 7 is not adjacent to region {0,1}")
	}
	nbs := p.NeighborRegions(r1.ID)
	if len(nbs) != 1 || nbs[0] != r2.ID {
		t.Errorf("NeighborRegions(r1) = %v, want [%d]", nbs, r2.ID)
	}
	if got := p.NeighborRegions(999); got != nil {
		t.Error("unknown region should have nil neighbors")
	}
	_ = r3
	// All of r1's members touch the outside.
	if got := p.BoundaryAreas(r1.ID); len(got) != 2 {
		t.Errorf("BoundaryAreas = %v", got)
	}
	if got := p.BoundaryAreas(999); got != nil {
		t.Error("unknown region boundary should be nil")
	}
	border := p.BorderAreasBetween(r1.ID, r2.ID)
	if len(border) != 1 || border[0] != 1 {
		t.Errorf("BorderAreasBetween = %v, want [1]", border)
	}
	if got := p.BorderAreasBetween(999, r2.ID); got != nil {
		t.Error("unknown region border should be nil")
	}
}

func TestAllSatisfied(t *testing.T) {
	set := constraint.Set{constraint.New(constraint.Sum, "POP", 30, 100)}
	p, _ := testPartition(t, set)
	r1 := p.NewRegion(0, 1, 2) // sum 30 ok
	if !p.AllSatisfied() {
		t.Error("sum 30 should satisfy [30,100]")
	}
	p.NewRegion(3) // sum 30 ok too
	if !p.AllSatisfied() {
		t.Error("both regions satisfy")
	}
	p.NewRegion(4) // sum 40 ok
	p.RemoveArea(2)
	_ = r1 // r1 now sums to 10 < 30
	if p.AllSatisfied() {
		t.Error("region below lower bound should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	r := p.NewRegion(0, 1)
	c := p.Clone()
	c.RemoveArea(1)
	if r.Size() != 2 || p.Assignment(1) == Unassigned {
		t.Error("clone mutation affected original")
	}
	if c.Region(r.ID).Size() != 1 {
		t.Error("clone did not apply mutation")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	// New regions in the clone must not collide with original ids.
	nr := c.NewRegion(5)
	if p.Region(nr.ID) != nil {
		t.Error("clone region id collides with original")
	}
}

func TestMoveValid(t *testing.T) {
	// 4x3 lattice; SUM within [20, 100].
	set := constraint.Set{constraint.New(constraint.Sum, "POP", 20, 100)}
	p, _ := testPartition(t, set)
	// POP values are id*10.
	r1 := p.NewRegion(0, 1)    // sum 10
	r2 := p.NewRegion(2, 3, 7) // sum 120... too big; use smaller
	p.DissolveRegion(r1.ID)
	p.DissolveRegion(r2.ID)

	rA := p.NewRegion(1, 2) // sum 30
	rB := p.NewRegion(5, 6) // sum 110 -> over upper; rebuild
	p.DissolveRegion(rB.ID)
	rB = p.NewRegion(5) // sum 50
	p.AddArea(rB.ID, 4) // sum 90
	_ = rA

	// Moving area 2 (POP 20) from rA to rB: rA keeps {1} sum 10 < 20 →
	// donor violates → invalid.
	if p.MoveValid(2, rB.ID) {
		t.Error("move leaving donor below lower bound accepted")
	}
	// Moving area 5 (POP 50) from rB to rA: receiver sum 80 <= 100 ok,
	// donor keeps {4} sum 40 in range, 5 adjacent to rA via 1/6? area 5
	// neighbors: 1, 4, 6, 9 — 1 is in rA. Donor {4} connected. Valid.
	if !p.MoveValid(5, rA.ID) {
		t.Error("legal move rejected")
	}
	// Unassigned area cannot move.
	if p.MoveValid(11, rA.ID) {
		t.Error("unassigned area move accepted")
	}
	// Move to own region is invalid.
	if p.MoveValid(1, rA.ID) {
		t.Error("self move accepted")
	}
	// Move to unknown region is invalid.
	if p.MoveValid(1, 999) {
		t.Error("move to unknown region accepted")
	}
	// Single-member donor cannot move (p would drop).
	single := p.NewRegion(10)
	if p.MoveValid(10, rA.ID) {
		t.Errorf("single-member donor move accepted (region %d)", single.ID)
	}
	// Non-adjacent target is invalid: area 4 is not adjacent to... build
	// a region far away.
	far := p.NewRegion(3)
	_ = far
	if p.MoveValid(4, far.ID) && !p.AdjacentToRegion(4, far.ID) {
		t.Error("non-adjacent move accepted")
	}
}

func TestRegionIDsSorted(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	p.NewRegion(0)
	p.NewRegion(2)
	p.NewRegion(4)
	ids := p.RegionIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("ids not sorted: %v", ids)
		}
	}
}

func TestSummarize(t *testing.T) {
	p, _ := testPartition(t, defaultSet())
	p.NewRegion(0, 1)
	s := p.Summarize()
	if s.P != 1 || s.UnassignedLen != 10 || s.Heterogeneity != 10 {
		t.Errorf("Summary = %+v", s)
	}
}

// Property: after an arbitrary valid mutation sequence, Validate passes and
// heterogeneity matches a full recomputation.
func TestPartitionInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		polys := geom.Lattice(geom.LatticeOptions{Cols: 5, Rows: 5})
		ds := data.FromPolygons("q", polys, geom.Rook)
		pop := make([]float64, 25)
		for i := range pop {
			pop[i] = float64(rng.Intn(100))
		}
		if err := ds.AddColumn("POP", pop); err != nil {
			return false
		}
		ds.Dissimilarity = "POP"
		ev, err := constraint.NewEvaluator(defaultSet(), ds.Column)
		if err != nil {
			return false
		}
		p, err := NewPartition(ds, ev)
		if err != nil {
			return false
		}
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0: // new region from random unassigned area
				ua := p.UnassignedAreas()
				if len(ua) > 0 {
					p.NewRegion(ua[rng.Intn(len(ua))])
				}
			case 1: // grow a region with an adjacent unassigned area
				ids := p.RegionIDs()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				for _, a := range p.UnassignedAreas() {
					if p.AdjacentToRegion(a, id) {
						p.AddArea(id, a)
						break
					}
				}
			case 2: // remove a removable boundary area
				ids := p.RegionIDs()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				for _, a := range p.BoundaryAreas(id) {
					if p.CanRemove(a) {
						p.RemoveArea(a)
						break
					}
				}
			case 3: // merge adjacent regions
				ids := p.RegionIDs()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				nbs := p.NeighborRegions(id)
				if len(nbs) > 0 {
					p.MergeRegions(id, nbs[rng.Intn(len(nbs))])
				}
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
