package region

import (
	"strings"
	"testing"
)

func TestPartitionFromRegions(t *testing.T) {
	ref, ds := testPartition(t, defaultSet())
	ev := ref.Evaluator()

	p, err := PartitionFromRegions(ds, ev, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}})
	if err != nil {
		t.Fatalf("PartitionFromRegions: %v", err)
	}
	if p.NumRegions() != 2 {
		t.Fatalf("p = %d, want 2", p.NumRegions())
	}
	// Region ids follow list order, starting at 1.
	for i, want := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		r := p.Region(i + 1)
		if r == nil {
			t.Fatalf("region %d missing", i+1)
		}
		if len(r.Members) != len(want) {
			t.Fatalf("region %d members %v, want %v", i+1, r.Members, want)
		}
		for j := range want {
			if r.Members[j] != want[j] {
				t.Fatalf("region %d members %v, want %v", i+1, r.Members, want)
			}
		}
	}
	if got := len(p.UnassignedAreas()); got != 4 {
		t.Fatalf("unassigned = %d, want 4 (areas 8..11)", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// The rebuilt partition carries the same heterogeneity as building the
	// same regions through the mutation API.
	ref.NewRegion(0, 1, 2, 3)
	ref.NewRegion(4, 5, 6, 7)
	if got, want := p.Heterogeneity(), ref.Heterogeneity(); got != want {
		t.Fatalf("Heterogeneity = %g, want %g", got, want)
	}
}

func TestPartitionFromRegionsErrors(t *testing.T) {
	ref, ds := testPartition(t, defaultSet())
	ev := ref.Evaluator()

	if _, err := PartitionFromRegions(ds, ev, [][]int{{0, 1}, {}}); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty region list: err = %v", err)
	}
	if _, err := PartitionFromRegions(ds, ev, [][]int{{0, 99}}); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Errorf("out-of-range area: err = %v", err)
	}
	if _, err := PartitionFromRegions(ds, ev, [][]int{{0, 1}, {1, 2}}); err == nil || !strings.Contains(err.Error(), "region lists 0 and 1") {
		t.Errorf("duplicate area: err = %v", err)
	}
	// A duplicate within one list must error too, not panic.
	if _, err := PartitionFromRegions(ds, ev, [][]int{{0, 0}}); err == nil {
		t.Error("duplicate within one list accepted")
	}
}
