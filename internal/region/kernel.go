package region

import (
	"math"
	"sort"
)

// This file implements the incremental heterogeneity kernel: an O(log n)
// evaluator for Σ_m |d_a − d_m| over the members m of a region, the quantity
// at the core of every heterogeneity update (AddArea, RemoveArea,
// MergeRegions' cross term, and HeteroDeltaMove).
//
// The decomposition is the standard prefix-sum split of an L1 objective:
// order all areas once per dissimilarity attribute by value (ties broken by
// area id, so ranks are unique and deterministic), and maintain per region a
// Fenwick (binary indexed) tree over that rank space storing member counts
// and member value sums. For a query value v with cnt≤/sum≤ the count and
// sum of members ranked at or below v's rank,
//
//	Σ_m |v − d_m| = v·cnt≤ − sum≤ + (sumtot − sum≤) − v·(size − cnt≤)
//
// because members with equal value contribute zero regardless of which side
// of the split they land on. One Fenwick prefix query per attribute answers
// the whole sum in O(log n) instead of O(|R|).
//
// Small regions stay on the naive O(|R|) scan — for |R| below the build
// threshold the scan is cheaper than tree traversal, and skipping trees for
// small regions bounds kernel memory to O(n²/threshold) across all regions
// (at most n/threshold regions can exceed the threshold simultaneously).

// kernelMinRegion is the floor of the Fenwick build threshold; the effective
// threshold grows with the dataset (see heteroKernel.minFen) so at most
// ~fenRegionCap regions ever hold a tree at once.
const kernelMinRegion = 8

// fenRegionCap bounds how many regions can simultaneously exceed the build
// threshold (threshold = max(kernelMinRegion, n/fenRegionCap)).
const fenRegionCap = 128

// heteroKernel holds the immutable per-dataset rank structure. It is shared
// across Partition clones; only regionFen trees are per-partition state.
type heteroKernel struct {
	n int
	// vals[ai][area] is the (scaled) dissimilarity value.
	vals [][]float64
	// valsT holds the same values area-major (valsT[area*attrs+ai]), so a
	// pair term touches one cache line per area instead of one per attribute.
	valsT []float64
	attrs int
	// rank[ai][area] is the area's unique rank in the sorted order of
	// attribute ai (ascending value, ties by area id).
	rank [][]int32
	// minFen is the region size at which a Fenwick tree is built.
	minFen int
}

// pairDiff returns Σ_attr |d_attr(a) − d_attr(b)|, summed in attribute order
// so the result is bitwise identical to the attribute-major loop it replaces.
func (k *heteroKernel) pairDiff(a, b int) float64 {
	var total float64
	ia, ib := a*k.attrs, b*k.attrs
	for i := 0; i < k.attrs; i++ {
		total += math.Abs(k.valsT[ia+i] - k.valsT[ib+i])
	}
	return total
}

// newHeteroKernel builds the rank order of each dissimilarity column.
func newHeteroKernel(dis [][]float64) *heteroKernel {
	n := 0
	if len(dis) > 0 {
		n = len(dis[0])
	}
	k := &heteroKernel{n: n, vals: dis, attrs: len(dis), minFen: kernelMinRegion}
	if t := n / fenRegionCap; t > k.minFen {
		k.minFen = t
	}
	k.valsT = make([]float64, n*len(dis))
	for ai, col := range dis {
		for area, v := range col {
			k.valsT[area*len(dis)+ai] = v
		}
	}
	k.rank = make([][]int32, len(dis))
	order := make([]int, n)
	for ai, col := range dis {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool {
			if col[order[x]] != col[order[y]] {
				return col[order[x]] < col[order[y]]
			}
			return order[x] < order[y]
		})
		r := make([]int32, n)
		for pos, area := range order {
			r[area] = int32(pos)
		}
		k.rank[ai] = r
	}
	return k
}

// fenNode is one Fenwick tree cell: the member value sum and member count
// of the rank range the cell covers, fused into a single 16-byte struct so a
// prefix walk touches one cache line per level instead of two (the split
// cnt/sum arrays made every query traverse two parallel arrays).
type fenNode struct {
	sum float64
	cnt int32
	_   int32
}

// regionFen is one region's Fenwick index: per attribute, a tree over ranks
// holding member counts and member value sums, plus the running totals.
type regionFen struct {
	size int
	tree [][]fenNode
	tot  []float64
}

// acquireFen returns a zeroed regionFen, reusing a pooled one when possible:
// first the partition-local free list, then the Shared cross-partition pool.
func (p *Partition) acquireFen() *regionFen {
	if n := len(p.fenPool); n > 0 {
		f := p.fenPool[n-1]
		p.fenPool = p.fenPool[:n-1]
		f.reset()
		p.stats.FenwickPoolReuse++
		return f
	}
	if p.shared != nil {
		if f, _ := p.shared.fens.Get().(*regionFen); f != nil {
			f.reset()
			p.stats.FenwickPoolReuse++
			return f
		}
	}
	k := p.krn
	f := &regionFen{
		tree: make([][]fenNode, len(k.vals)),
		tot:  make([]float64, len(k.vals)),
	}
	for ai := range k.vals {
		f.tree[ai] = make([]fenNode, k.n+1)
	}
	return f
}

// releaseFen returns a tree to the pool (nil-safe).
func (p *Partition) releaseFen(f *regionFen) {
	if f != nil {
		p.fenPool = append(p.fenPool, f)
	}
}

// reset zeroes the tree in place.
func (f *regionFen) reset() {
	f.size = 0
	for ai := range f.tree {
		t := f.tree[ai]
		for i := range t {
			t[i] = fenNode{}
		}
		f.tot[ai] = 0
	}
}

// add registers an area in the tree.
func (k *heteroKernel) add(f *regionFen, area int) {
	f.size++
	for ai := range k.vals {
		v := k.vals[ai][area]
		f.tot[ai] += v
		t := f.tree[ai]
		for i := int(k.rank[ai][area]) + 1; i < len(t); i += i & (-i) {
			t[i].cnt++
			t[i].sum += v
		}
	}
}

// remove unregisters an area from the tree.
func (k *heteroKernel) remove(f *regionFen, area int) {
	f.size--
	for ai := range k.vals {
		v := k.vals[ai][area]
		f.tot[ai] -= v
		t := f.tree[ai]
		for i := int(k.rank[ai][area]) + 1; i < len(t); i += i & (-i) {
			t[i].cnt--
			t[i].sum -= v
		}
	}
}

// query returns Σ_m Σ_attr |d_attr(area) − d_attr(m)| over the registered
// members m in O(attrs · log n). The area itself may or may not be
// registered; its self-term is zero either way.
func (k *heteroKernel) query(f *regionFen, area int) float64 {
	var total float64
	for ai := range k.vals {
		v := k.vals[ai][area]
		t := f.tree[ai]
		// Inclusive prefix over ranks <= rank(area).
		var cb int32
		var sb float64
		for i := int(k.rank[ai][area]) + 1; i > 0; i -= i & (-i) {
			cb += t[i].cnt
			sb += t[i].sum
		}
		total += v*float64(cb) - sb + (f.tot[ai] - sb) - v*float64(f.size-int(cb))
	}
	return total
}
