package region

import (
	"math"
	"math/rand"
	"testing"

	"emp/internal/constraint"
	"emp/internal/data"
	"emp/internal/geom"
)

// gridPartition builds a cols x rows lattice with the given dissimilarity
// values and an empty constraint set.
func gridPartition(t *testing.T, cols, rows int, dis []float64, multi bool) *Partition {
	t.Helper()
	polys := geom.Lattice(geom.LatticeOptions{Cols: cols, Rows: rows})
	ds := data.FromPolygons("k", polys, geom.Rook)
	if err := ds.AddColumn("D", dis); err != nil {
		t.Fatal(err)
	}
	if multi {
		// Second attribute correlated with position, to exercise the
		// multivariate Manhattan path.
		d2 := make([]float64, len(dis))
		for i := range d2 {
			d2[i] = float64(i % 5)
		}
		if err := ds.AddColumn("D2", d2); err != nil {
			t.Fatal(err)
		}
		ds.DissimilarityAttrs = []string{"D", "D2"}
	} else {
		ds.Dissimilarity = "D"
	}
	ev, err := constraint.NewEvaluator(constraint.Set{}, ds.Column)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartition(ds, ev)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKernelQueryMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, multi := range []bool{false, true} {
		n := 48
		dis := make([]float64, n)
		for i := range dis {
			dis[i] = math.Round(rng.Float64()*100) / 4 // include ties
		}
		p := gridPartition(t, 8, 6, dis, multi)
		order := p.Graph().BFSOrder(0, nil)
		r := p.NewRegion(order[:30]...) // above the build threshold
		if r.fen == nil {
			t.Fatalf("multi=%v: expected a Fenwick index for a %d-member region (threshold %d)",
				multi, r.Size(), p.krn.minFen)
		}
		for a := 0; a < n; a++ {
			got := p.krn.query(r.fen, a)
			want := p.sumAbsDiff(a, r.Members)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("multi=%v area %d: kernel %g != naive %g", multi, a, got, want)
			}
		}
	}
}

func TestKernelDeltaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	dis := make([]float64, n)
	for i := range dis {
		dis[i] = float64(rng.Intn(40))
	}
	p := gridPartition(t, 8, 8, dis, false)
	order := p.Graph().BFSOrder(0, nil)
	r1 := p.NewRegion(order[:32]...)
	r2 := p.NewRegion(order[32:]...)

	naive := p.Clone()
	naive.SetHeteroKernel(false)
	for _, r := range []*Region{r1, r2} {
		if r.fen == nil {
			t.Fatalf("region %d: kernel index not built", r.ID)
		}
	}
	for _, a := range p.BorderAreasBetween(r1.ID, r2.ID) {
		got := p.HeteroDeltaMove(a, r2.ID)
		want := naive.HeteroDeltaMove(a, r2.ID)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("area %d: kernel delta %g != naive delta %g", a, got, want)
		}
	}
}

// TestKernelRandomMutations drives random add/remove/move/merge sequences
// and checks Validate (whose heterogeneity oracle is the naive pairwise
// recompute) after every step, with the kernel on.
func TestKernelRandomMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		cols, rows := 5+rng.Intn(4), 5+rng.Intn(4)
		n := cols * rows
		dis := make([]float64, n)
		for i := range dis {
			dis[i] = float64(rng.Intn(25)) // many ties
		}
		p := gridPartition(t, cols, rows, dis, trial%2 == 1)
		order := p.Graph().BFSOrder(0, nil)
		half := len(order) / 2
		p.NewRegion(order[:half]...)
		p.NewRegion(order[half:]...)
		if err := p.Validate(); err != nil {
			continue // second BFS half may be discontiguous; skip
		}
		for step := 0; step < 60; step++ {
			ids := p.RegionIDs()
			switch rng.Intn(4) {
			case 0: // move a border area
				if len(ids) < 2 {
					continue
				}
				f, to := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
				if f == to {
					continue
				}
				border := p.BorderAreasBetween(f, to)
				if len(border) == 0 {
					continue
				}
				a := border[rng.Intn(len(border))]
				if p.Region(f).Size() > 1 && p.CanRemove(a) {
					p.MoveArea(a, to)
				}
			case 1: // remove a removable boundary area
				id := ids[rng.Intn(len(ids))]
				r := p.Region(id)
				if r.Size() <= 1 {
					continue
				}
				rem := p.RemovableMembers(id)
				for i, okRem := range rem {
					if okRem {
						p.RemoveArea(r.Members[i])
						break
					}
				}
			case 2: // re-add an unassigned area next to a region
				for _, a := range p.UnassignedAreas() {
					done := false
					for _, nb := range p.Graph().Neighbors(a) {
						if id := p.Assignment(int(nb)); id != Unassigned {
							p.AddArea(id, a)
							done = true
							break
						}
					}
					if done {
						break
					}
				}
			case 3: // merge two adjacent regions
				if len(ids) < 3 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				nbs := p.NeighborRegions(id)
				if len(nbs) > 0 {
					p.MergeRegions(id, nbs[rng.Intn(len(nbs))])
				}
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
	}
}

func TestSetHeteroKernelTogglesIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 36
	dis := make([]float64, n)
	for i := range dis {
		dis[i] = rng.Float64() * 10
	}
	p := gridPartition(t, 6, 6, dis, false)
	order := p.Graph().BFSOrder(0, nil)
	r := p.NewRegion(order...)
	if r.fen == nil {
		t.Fatal("kernel index not built for a large region")
	}
	h := p.Heterogeneity()
	p.SetHeteroKernel(false)
	if r.fen != nil {
		t.Error("index not dropped on disable")
	}
	if p.HeteroKernelEnabled() {
		t.Error("HeteroKernelEnabled after disable")
	}
	if got := p.Heterogeneity(); got != h {
		t.Errorf("H changed on disable: %g != %g", got, h)
	}
	p.SetHeteroKernel(true)
	if r.fen == nil {
		t.Error("index not rebuilt on enable")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCloneRebuildsKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 40
	dis := make([]float64, n)
	for i := range dis {
		dis[i] = rng.Float64() * 50
	}
	p := gridPartition(t, 8, 5, dis, false)
	order := p.Graph().BFSOrder(0, nil)
	p.NewRegion(order...)
	c := p.Clone()
	for _, id := range c.RegionIDs() {
		if c.Region(id).fen == nil {
			t.Errorf("clone region %d: kernel index missing", id)
		}
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	// Mutating the clone must not corrupt the original.
	c.RemoveArea(order[len(order)-1])
	if err := p.Validate(); err != nil {
		t.Errorf("original corrupted by clone mutation: %v", err)
	}
}

func TestHeterogeneityDeterministicOrder(t *testing.T) {
	// Build many regions with heterogeneity values whose float sum is
	// order-sensitive, then check repeated evaluation is stable.
	rng := rand.New(rand.NewSource(17))
	n := 64
	dis := make([]float64, n)
	for i := range dis {
		dis[i] = rng.Float64() * 1e6
	}
	p := gridPartition(t, 8, 8, dis, false)
	for row := 0; row < 8; row++ {
		areas := make([]int, 8)
		for c := 0; c < 8; c++ {
			areas[c] = row*8 + c
		}
		p.NewRegion(areas...)
	}
	h := p.Heterogeneity()
	for i := 0; i < 50; i++ {
		if got := p.Heterogeneity(); got != h {
			t.Fatalf("Heterogeneity not reproducible: %g != %g", got, h)
		}
	}
}
