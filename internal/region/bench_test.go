package region

import (
	"math/rand"
	"testing"

	"emp/internal/constraint"
	"emp/internal/data"
	"emp/internal/geom"
)

// benchPartition builds a cols x rows lattice split into two vertical-half
// regions, optionally with the heterogeneity kernel disabled.
func benchPartition(b *testing.B, cols, rows int, kernel bool) (*Partition, int, int, int) {
	b.Helper()
	n := cols * rows
	polys := geom.Lattice(geom.LatticeOptions{Cols: cols, Rows: rows})
	ds := data.FromPolygons("bench", polys, geom.Rook)
	rng := rand.New(rand.NewSource(1))
	dis := make([]float64, n)
	for i := range dis {
		dis[i] = rng.Float64() * 1000
	}
	if err := ds.AddColumn("D", dis); err != nil {
		b.Fatal(err)
	}
	ds.Dissimilarity = "D"
	ev, err := constraint.NewEvaluator(constraint.Set{}, ds.Column)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPartition(ds, ev)
	if err != nil {
		b.Fatal(err)
	}
	p.SetHeteroKernel(kernel)
	var left, right []int
	for i := 0; i < n; i++ {
		if i%cols < cols/2 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	r1 := p.NewRegion(left...)
	r2 := p.NewRegion(right...)
	// A border area of r1 adjacent to r2.
	area := p.BorderAreasBetween(r1.ID, r2.ID)[0]
	return p, area, r1.ID, r2.ID
}

// BenchmarkHeteroDeltaMove measures the candidate-delta evaluation that
// dominates the Tabu hot path: O(attrs·log n) with the Fenwick kernel vs the
// naive O(|from| + |to|) member scan.
func BenchmarkHeteroDeltaMove(b *testing.B) {
	for _, mode := range []struct {
		name   string
		kernel bool
	}{{"kernel", true}, {"naive", false}} {
		b.Run(mode.name, func(b *testing.B) {
			p, area, _, to := benchPartition(b, 64, 64, mode.kernel)
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += p.HeteroDeltaMove(area, to)
			}
			_ = sink
		})
	}
}

// BenchmarkAddRemoveArea measures the incremental heterogeneity bookkeeping
// of one move (remove + re-add).
func BenchmarkAddRemoveArea(b *testing.B) {
	for _, mode := range []struct {
		name   string
		kernel bool
	}{{"kernel", true}, {"naive", false}} {
		b.Run(mode.name, func(b *testing.B) {
			p, area, from, to := benchPartition(b, 64, 64, mode.kernel)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.MoveArea(area, to)
				p.MoveArea(area, from)
			}
		})
	}
}

// BenchmarkRemovableMembers measures the per-epoch articulation pass that
// replaces one BFS per candidate.
func BenchmarkRemovableMembers(b *testing.B) {
	p, _, from, _ := benchPartition(b, 64, 64, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rem := p.RemovableMembers(from); len(rem) == 0 {
			b.Fatal("no members")
		}
	}
}
