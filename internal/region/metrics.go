package region

import "emp/internal/obs"

// PartitionStats accumulates the partition's hot-path work as plain ints.
// A Partition is single-goroutine by contract, so the increments cost a
// load/add/store each — no atomics, no branches — and the whole struct is
// flushed into the process-wide registry at phase boundaries (end of a
// construction pass or local-search run) via FlushObs.
type PartitionStats struct {
	// KernelQueries counts heterogeneity evaluations answered by the
	// Fenwick kernel (O(attrs·log n) path).
	KernelQueries int64
	// NaiveScans counts heterogeneity evaluations answered by the naive
	// member scan (small regions or kernel off).
	NaiveScans int64
	// FenwickBuilds counts Fenwick index constructions (threshold
	// crossings, clones, kernel re-enables).
	FenwickBuilds int64
	// FenwickPoolReuse counts builds served from the partition's tree pool
	// instead of fresh allocations.
	FenwickPoolReuse int64
}

// add folds o into s.
func (s *PartitionStats) add(o PartitionStats) {
	s.KernelQueries += o.KernelQueries
	s.NaiveScans += o.NaiveScans
	s.FenwickBuilds += o.FenwickBuilds
	s.FenwickPoolReuse += o.FenwickPoolReuse
}

// Stats returns the partition's accumulated hot-path counters since creation
// or the last FlushObs.
func (p *Partition) Stats() PartitionStats { return p.stats }

// FlushObs adds the partition's accumulated counters to the registry bound
// by SetMetrics (a no-op when none is bound or it is disabled) and zeroes
// them. Solver phases call it once per run.
func (p *Partition) FlushObs() {
	m := met
	m.kernelQueries.Add(p.stats.KernelQueries)
	m.naiveScans.Add(p.stats.NaiveScans)
	m.fenwickBuilds.Add(p.stats.FenwickBuilds)
	m.fenwickPoolReuse.Add(p.stats.FenwickPoolReuse)
	p.stats = PartitionStats{}
}

// pkgMetrics holds the package's registry-bound counters. All fields are
// nil until SetMetrics binds a registry; obs counters are nil-receiver safe.
type pkgMetrics struct {
	kernelQueries    *obs.Counter
	naiveScans       *obs.Counter
	fenwickBuilds    *obs.Counter
	fenwickPoolReuse *obs.Counter
}

var met pkgMetrics

// SetMetrics binds the package's process-wide counters to the registry
// (nil unbinds them, restoring the zero-cost absent state). Call it during
// startup wiring, before solves begin — the binding itself is not
// synchronized against concurrent solver use.
func SetMetrics(r *obs.Registry) {
	if r == nil {
		met = pkgMetrics{}
		return
	}
	met = pkgMetrics{
		kernelQueries: r.Counter("emp_region_kernel_queries_total",
			"Heterogeneity evaluations answered by the Fenwick kernel."),
		naiveScans: r.Counter("emp_region_naive_scans_total",
			"Heterogeneity evaluations answered by the naive member scan."),
		fenwickBuilds: r.Counter("emp_region_fenwick_builds_total",
			"Per-region Fenwick index constructions."),
		fenwickPoolReuse: r.Counter("emp_region_fenwick_pool_reuse_total",
			"Fenwick index builds served from the partition's tree pool."),
	}
}
