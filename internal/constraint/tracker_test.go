package constraint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testColumns builds an evaluator over two attribute columns A and B.
func testColumns(t *testing.T, set Set, a, b []float64) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(set, func(attr string) []float64 {
		switch attr {
		case "A":
			return a
		case "B":
			return b
		}
		return nil
	})
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	return ev
}

func TestNewEvaluatorErrors(t *testing.T) {
	lookup := func(string) []float64 { return nil }
	if _, err := NewEvaluator(Set{AtLeast(Sum, "MISSING", 1)}, lookup); err == nil {
		t.Error("missing attribute accepted")
	}
	if _, err := NewEvaluator(Set{New(Avg, "A", 5, 2)}, lookup); err == nil {
		t.Error("invalid set accepted")
	}
	// COUNT needs no column.
	if _, err := NewEvaluator(Set{AtLeast(Count, "", 1)}, lookup); err != nil {
		t.Errorf("COUNT-only evaluator: %v", err)
	}
}

func TestTrackerAddValues(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	set := Set{
		AtLeast(Sum, "A", 0),  // 0: SUM(A)
		AtLeast(Min, "A", 0),  // 1: MIN(A)
		AtMost(Max, "B", 100), // 2: MAX(B)
		New(Avg, "B", 0, 100), // 3: AVG(B)
		AtLeast(Count, "", 0), // 4: COUNT
	}
	ev := testColumns(t, set, a, b)
	tr := ev.NewTracker()
	if tr.Count() != 0 {
		t.Fatal("new tracker not empty")
	}
	if !math.IsInf(tr.Value(1), 1) || !math.IsInf(tr.Value(2), -1) {
		t.Error("empty extrema should be +Inf/-Inf")
	}
	if !math.IsNaN(tr.Value(3)) {
		t.Error("empty AVG should be NaN")
	}
	tr.Add(0)
	tr.Add(2)
	tr.Add(4)
	if got := tr.Value(0); got != 9 {
		t.Errorf("SUM(A) = %v, want 9", got)
	}
	if got := tr.Value(1); got != 1 {
		t.Errorf("MIN(A) = %v, want 1", got)
	}
	if got := tr.Value(2); got != 50 {
		t.Errorf("MAX(B) = %v, want 50", got)
	}
	if got := tr.Value(3); got != 30 {
		t.Errorf("AVG(B) = %v, want 30", got)
	}
	if got := tr.Value(4); got != 3 {
		t.Errorf("COUNT = %v, want 3", got)
	}
}

func TestTrackerRemoveRecomputesExtremes(t *testing.T) {
	a := []float64{5, 1, 1, 9}
	set := Set{AtLeast(Min, "A", 0), AtMost(Max, "A", 100)}
	ev := testColumns(t, set, a, nil)
	tr := ev.Compute([]int{0, 1, 2, 3})
	if tr.Value(0) != 1 || tr.Value(1) != 9 {
		t.Fatalf("initial min/max = %v/%v", tr.Value(0), tr.Value(1))
	}
	// Remove one of the duplicate minima: min stays 1 without recompute.
	tr.Remove(1, []int{0, 2, 3})
	if tr.Value(0) != 1 {
		t.Errorf("min after removing dup = %v, want 1", tr.Value(0))
	}
	// Remove the last minimum: recompute to 5.
	tr.Remove(2, []int{0, 3})
	if tr.Value(0) != 5 {
		t.Errorf("min after removing last 1 = %v, want 5", tr.Value(0))
	}
	// Remove the maximum: recompute to 5.
	tr.Remove(3, []int{0})
	if tr.Value(1) != 5 {
		t.Errorf("max after removing 9 = %v, want 5", tr.Value(1))
	}
	// Remove the final member: tracker resets to empty state.
	tr.Remove(0, nil)
	if tr.Count() != 0 || !math.IsInf(tr.Value(0), 1) || !math.IsInf(tr.Value(1), -1) {
		t.Error("tracker not reset after final removal")
	}
}

func TestTrackerMerge(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6}
	set := Set{AtLeast(Sum, "A", 0), AtLeast(Min, "A", 0), AtMost(Max, "A", 100), New(Avg, "A", 0, 100)}
	ev := testColumns(t, set, a, nil)
	t1 := ev.Compute([]int{0, 1}) // values 1, 2
	t2 := ev.Compute([]int{4, 5}) // values 5, 6
	t1.Merge(t2)
	if t1.Count() != 4 {
		t.Errorf("merged count = %d", t1.Count())
	}
	if t1.Value(0) != 14 || t1.Value(1) != 1 || t1.Value(2) != 6 || t1.Value(3) != 3.5 {
		t.Errorf("merged aggregates = %v %v %v %v", t1.Value(0), t1.Value(1), t1.Value(2), t1.Value(3))
	}
	// Merge with equal extremes accumulates multiplicity: removing one copy
	// of the shared min must not trigger a wrong recompute.
	t3 := ev.Compute([]int{0}) // value 1
	t4 := ev.Compute([]int{3}) // value 4
	_ = t4
	t5 := ev.NewTracker()
	t5.Add(0) // value 1 again (duplicate id is fine for tracker math)
	t3.Merge(t5)
	t3.Remove(0, []int{0})
	if t3.Value(1) != 1 {
		t.Errorf("min after removing one of two equal minima = %v, want 1", t3.Value(1))
	}
}

func TestTrackerClone(t *testing.T) {
	a := []float64{1, 2, 3}
	set := Set{AtLeast(Sum, "A", 0)}
	ev := testColumns(t, set, a, nil)
	t1 := ev.Compute([]int{0, 1})
	c := t1.Clone()
	c.Add(2)
	if t1.Value(0) != 3 {
		t.Errorf("clone mutated original: %v", t1.Value(0))
	}
	if c.Value(0) != 6 {
		t.Errorf("clone sum = %v, want 6", c.Value(0))
	}
}

func TestTrackerSatisfaction(t *testing.T) {
	a := []float64{10, 20, 30}
	set := Set{New(Sum, "A", 25, 55), New(Count, "", 1, 2)}
	ev := testColumns(t, set, a, nil)
	tr := ev.NewTracker()
	if tr.SatisfiedAll() {
		t.Error("empty region must not satisfy")
	}
	tr.Add(0)
	if tr.SatisfiedAll() {
		t.Error("sum 10 outside [25,55]")
	}
	if !tr.Satisfied(1) {
		t.Error("count 1 within [1,2]")
	}
	tr.Add(1)
	if !tr.SatisfiedAll() {
		t.Errorf("sum 30, count 2 should satisfy; sum ok=%v count ok=%v", tr.Satisfied(0), tr.Satisfied(1))
	}
	if tr.SatisfiedAllAfterAdd(2) {
		t.Error("adding area 2 would push count to 3 and sum to 60")
	}
}

func TestSatisfiedAllAfterMerge(t *testing.T) {
	a := []float64{10, 20, 30, 40}
	set := Set{New(Sum, "A", 30, 70), New(Min, "A", 10, 100)}
	ev := testColumns(t, set, a, nil)
	t1 := ev.Compute([]int{0})
	t2 := ev.Compute([]int{1})
	if !t1.SatisfiedAllAfterMerge(t2) {
		t.Error("merge sum 30 should satisfy")
	}
	t3 := ev.Compute([]int{2, 3})
	if t1.SatisfiedAllAfterMerge(t3) {
		t.Error("merge sum 80 should violate upper bound")
	}
	empty1, empty2 := ev.NewTracker(), ev.NewTracker()
	if empty1.SatisfiedAllAfterMerge(empty2) {
		t.Error("merging two empty trackers is still empty")
	}
}

func TestNoConstraintsAnyNonEmptyRegionValid(t *testing.T) {
	ev, err := NewEvaluator(Set{}, func(string) []float64 { return nil })
	if err != nil {
		t.Fatal(err)
	}
	tr := ev.NewTracker()
	if tr.SatisfiedAll() {
		t.Error("empty region valid under empty set")
	}
	tr.Add(0)
	if !tr.SatisfiedAll() {
		t.Error("non-empty region invalid under empty set")
	}
}

// Property: after an arbitrary sequence of adds and removes, the tracker
// matches a naive recomputation over the surviving member multiset.
func TestTrackerMatchesNaive(t *testing.T) {
	const n = 30
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(10)) // small domain to force duplicate extremes
		}
		set := Set{
			AtLeast(Sum, "A", 0), AtLeast(Min, "A", 0),
			AtMost(Max, "A", 100), New(Avg, "A", 0, 100), AtLeast(Count, "", 0),
		}
		ev, err := NewEvaluator(set, func(attr string) []float64 { return a })
		if err != nil {
			return false
		}
		tr := ev.NewTracker()
		var members []int
		for op := 0; op < 60; op++ {
			if len(members) == 0 || rng.Float64() < 0.6 {
				area := rng.Intn(n)
				tr.Add(area)
				members = append(members, area)
			} else {
				idx := rng.Intn(len(members))
				area := members[idx]
				members = append(members[:idx], members[idx+1:]...)
				tr.Remove(area, members)
			}
			want := ev.Compute(members)
			for i := range set {
				got, exp := tr.Value(i), want.Value(i)
				if math.IsNaN(got) && math.IsNaN(exp) {
					continue
				}
				if math.Abs(got-exp) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ValueAfterAdd agrees with actually adding.
func TestValueAfterAddMatchesAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 20)
		for i := range a {
			a[i] = rng.Float64() * 100
		}
		set := Set{AtLeast(Sum, "A", 0), AtLeast(Min, "A", 0), AtMost(Max, "A", 1e9), New(Avg, "A", 0, 1e9), AtLeast(Count, "", 0)}
		ev, _ := NewEvaluator(set, func(string) []float64 { return a })
		tr := ev.NewTracker()
		members := []int{}
		for step := 0; step < 10; step++ {
			area := rng.Intn(len(a))
			for i := range set {
				predicted := tr.ValueAfterAdd(i, area)
				actual := tr.Clone()
				actual.Add(area)
				if math.Abs(predicted-actual.Value(i)) > 1e-9 {
					return false
				}
			}
			tr.Add(area)
			members = append(members, area)
		}
		_ = members
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	a := []float64{7}
	set := Set{AtLeast(Sum, "A", 0), AtLeast(Count, "", 0)}
	ev := testColumns(t, set, a, nil)
	if ev.Len() != 2 {
		t.Errorf("Len = %d", ev.Len())
	}
	if ev.At(0).Agg != Sum {
		t.Error("At(0) wrong")
	}
	if ev.Set()[1].Agg != Count {
		t.Error("Set() wrong")
	}
	if ev.AreaValue(0, 0) != 7 {
		t.Error("AreaValue for SUM should read the column")
	}
	if ev.AreaValue(1, 0) != 1 {
		t.Error("AreaValue for COUNT should be 1")
	}
}
