package constraint

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse converts one SQL-ish constraint expression into a Constraint.
// Accepted forms (whitespace-insensitive, aggregate names case-insensitive):
//
//	SUM(TOTALPOP) >= 20000
//	MIN(POP16UP) <= 3000
//	AVG(EMPLOYED) in [1500, 3500]
//	AVG(EMPLOYED) between 1500 and 3500
//	1500 <= AVG(EMPLOYED) <= 3500
//	COUNT(*) <= 4
//	COUNT >= 2
//
// Suffix multipliers k/K (1e3) and m/M (1e6) are accepted on numbers, so
// "SUM(TOTALPOP) >= 20k" works.
func Parse(expr string) (Constraint, error) {
	s := strings.TrimSpace(expr)
	if s == "" {
		return Constraint{}, fmt.Errorf("constraint: empty expression")
	}

	// Chained form: <num> <= AGG(attr) <= <num>.
	if c, ok, err := parseChained(s); ok || err != nil {
		return c, err
	}

	agg, attr, rest, err := parseAggRef(s)
	if err != nil {
		return Constraint{}, err
	}
	rest = strings.TrimSpace(rest)
	lower := strings.ToLower(rest)

	switch {
	case strings.HasPrefix(rest, ">="):
		v, err := parseNumber(rest[2:])
		if err != nil {
			return Constraint{}, fmt.Errorf("constraint: %q: %v", expr, err)
		}
		return AtLeast(agg, attr, v), nil
	case strings.HasPrefix(rest, "<="):
		v, err := parseNumber(rest[2:])
		if err != nil {
			return Constraint{}, fmt.Errorf("constraint: %q: %v", expr, err)
		}
		return AtMost(agg, attr, v), nil
	case strings.HasPrefix(lower, "in"):
		return parseRange(agg, attr, rest[2:], expr)
	case strings.HasPrefix(lower, "between"):
		return parseBetween(agg, attr, rest[len("between"):], expr)
	default:
		return Constraint{}, fmt.Errorf("constraint: %q: expected >=, <=, 'in [l,u]' or 'between l and u' after aggregate", expr)
	}
}

// ParseSet parses a semicolon- or newline-separated list of constraint
// expressions and validates the resulting set.
func ParseSet(exprs string) (Set, error) {
	fields := strings.FieldsFunc(exprs, func(r rune) bool { return r == ';' || r == '\n' })
	var set Set
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		c, err := Parse(f)
		if err != nil {
			return nil, err
		}
		set = append(set, c)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// parseAggRef consumes "AGG(attr)" or bare "COUNT" from the front of s and
// returns the remainder.
func parseAggRef(s string) (Aggregate, string, string, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		// Bare COUNT without parentheses.
		for i := 0; i < len(s); i++ {
			if s[i] == ' ' || s[i] == '<' || s[i] == '>' {
				name := s[:i]
				agg, err := ParseAggregate(name)
				if err != nil {
					return 0, "", "", err
				}
				if agg != Count {
					return 0, "", "", fmt.Errorf("constraint: aggregate %s requires an attribute, e.g. %s(POP)", agg, agg)
				}
				return Count, "", s[i:], nil
			}
		}
		return 0, "", "", fmt.Errorf("constraint: cannot parse aggregate reference in %q", s)
	}
	agg, err := ParseAggregate(s[:open])
	if err != nil {
		return 0, "", "", err
	}
	close := strings.IndexByte(s[open:], ')')
	if close < 0 {
		return 0, "", "", fmt.Errorf("constraint: missing ')' in %q", s)
	}
	attr := strings.TrimSpace(s[open+1 : open+close])
	if attr == "*" {
		attr = ""
	}
	if attr == "" && agg != Count {
		return 0, "", "", fmt.Errorf("constraint: aggregate %s requires an attribute", agg)
	}
	if agg == Count {
		attr = "" // COUNT ignores its attribute; normalize.
	}
	return agg, attr, s[open+close+1:], nil
}

func parseChained(s string) (Constraint, bool, error) {
	first := strings.Index(s, "<=")
	if first <= 0 {
		return Constraint{}, false, nil
	}
	head := strings.TrimSpace(s[:first])
	if _, err := parseNumber(head); err != nil {
		return Constraint{}, false, nil // not the chained form
	}
	rest := s[first+2:]
	second := strings.Index(rest, "<=")
	if second < 0 {
		return Constraint{}, false, nil
	}
	lo, err := parseNumber(head)
	if err != nil {
		return Constraint{}, true, err
	}
	agg, attr, mid, err := parseAggRef(strings.TrimSpace(rest[:second]))
	if err != nil {
		return Constraint{}, true, err
	}
	if strings.TrimSpace(mid) != "" {
		return Constraint{}, true, fmt.Errorf("constraint: unexpected %q in chained comparison", mid)
	}
	hi, err := parseNumber(rest[second+2:])
	if err != nil {
		return Constraint{}, true, err
	}
	return New(agg, attr, lo, hi), true, nil
}

func parseRange(agg Aggregate, attr, rest, expr string) (Constraint, error) {
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
		return Constraint{}, fmt.Errorf("constraint: %q: expected range like [l, u]", expr)
	}
	body := rest[1 : len(rest)-1]
	parts := strings.Split(body, ",")
	if len(parts) != 2 {
		return Constraint{}, fmt.Errorf("constraint: %q: range needs two comma-separated bounds", expr)
	}
	lo, err := parseNumber(parts[0])
	if err != nil {
		return Constraint{}, fmt.Errorf("constraint: %q: %v", expr, err)
	}
	hi, err := parseNumber(parts[1])
	if err != nil {
		return Constraint{}, fmt.Errorf("constraint: %q: %v", expr, err)
	}
	return New(agg, attr, lo, hi), nil
}

func parseBetween(agg Aggregate, attr, rest, expr string) (Constraint, error) {
	lowerRest := strings.ToLower(rest)
	andIdx := strings.Index(lowerRest, " and ")
	if andIdx < 0 {
		return Constraint{}, fmt.Errorf("constraint: %q: expected 'between l and u'", expr)
	}
	lo, err := parseNumber(rest[:andIdx])
	if err != nil {
		return Constraint{}, fmt.Errorf("constraint: %q: %v", expr, err)
	}
	hi, err := parseNumber(rest[andIdx+5:])
	if err != nil {
		return Constraint{}, fmt.Errorf("constraint: %q: %v", expr, err)
	}
	return New(agg, attr, lo, hi), nil
}

// parseNumber parses a float with optional k/K (1e3) or m/M (1e6) suffix,
// plus the spellings inf, +inf, -inf.
func parseNumber(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("missing number")
	}
	switch strings.ToLower(s) {
	case "inf", "+inf", "infinity":
		return math.Inf(1), nil
	case "-inf", "-infinity":
		return math.Inf(-1), nil
	}
	mult := 1.0
	switch s[len(s)-1] {
	case 'k', 'K':
		mult = 1e3
		s = s[:len(s)-1]
	case 'm', 'M':
		mult = 1e6
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v * mult, nil
}
