// Package constraint models EMP's enriched user-defined constraints.
//
// A constraint is a 4-tuple (f, s, l, u): an SQL-style aggregate function f
// over a spatially extensive attribute s, bounded to the range [l, u] where
// either side may be infinite (Definition III.1 of the paper). The package
// also provides the per-region incremental aggregate Tracker that the
// construction and local-search phases use to validate regions in O(1) per
// constraint for additions and amortized O(region size) for removals.
package constraint

import (
	"fmt"
	"math"
	"strings"
)

// Aggregate is an SQL-inspired aggregate function.
type Aggregate int

const (
	// Min is the extrema aggregate MIN.
	Min Aggregate = iota
	// Max is the extrema aggregate MAX.
	Max
	// Avg is the centrality aggregate AVG.
	Avg
	// Sum is the counting aggregate SUM.
	Sum
	// Count is the counting aggregate COUNT. It counts areas in a region;
	// the attribute of a COUNT constraint is ignored.
	Count
)

// Aggregates lists every supported aggregate in declaration order.
var Aggregates = []Aggregate{Min, Max, Avg, Sum, Count}

// String returns the SQL name of the aggregate.
func (a Aggregate) String() string {
	switch a {
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// Family groups aggregates as the paper does: extrema (MIN, MAX),
// centrality (AVG) and counting (SUM, COUNT). Each construction step of
// FaCT satisfies one family.
type Family int

const (
	// Extrema covers MIN and MAX.
	Extrema Family = iota
	// Centrality covers AVG.
	Centrality
	// Counting covers SUM and COUNT.
	Counting
)

// String returns the family name used in the paper.
func (f Family) String() string {
	switch f {
	case Extrema:
		return "extrema"
	case Centrality:
		return "centrality"
	case Counting:
		return "counting"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Family returns the constraint family of the aggregate.
func (a Aggregate) Family() Family {
	switch a {
	case Min, Max:
		return Extrema
	case Avg:
		return Centrality
	default:
		return Counting
	}
}

// ParseAggregate converts an SQL aggregate name (case-insensitive) into an
// Aggregate.
func ParseAggregate(s string) (Aggregate, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "MIN":
		return Min, nil
	case "MAX":
		return Max, nil
	case "AVG", "MEAN", "AVERAGE":
		return Avg, nil
	case "SUM":
		return Sum, nil
	case "COUNT":
		return Count, nil
	default:
		return 0, fmt.Errorf("constraint: unknown aggregate %q", s)
	}
}

// Constraint is a user-defined constraint c = (f, s, l, u): the region-level
// aggregate f of attribute s must lie in [Lower, Upper]. Lower may be -Inf
// and Upper may be +Inf for one-sided constraints.
type Constraint struct {
	Agg   Aggregate
	Attr  string
	Lower float64
	Upper float64
}

// New builds a two-sided constraint.
func New(agg Aggregate, attr string, lower, upper float64) Constraint {
	return Constraint{Agg: agg, Attr: attr, Lower: lower, Upper: upper}
}

// AtLeast builds the one-sided constraint f(s) >= l.
func AtLeast(agg Aggregate, attr string, lower float64) Constraint {
	return Constraint{Agg: agg, Attr: attr, Lower: lower, Upper: math.Inf(1)}
}

// AtMost builds the one-sided constraint f(s) <= u.
func AtMost(agg Aggregate, attr string, upper float64) Constraint {
	return Constraint{Agg: agg, Attr: attr, Lower: math.Inf(-1), Upper: upper}
}

// Validate checks the range is well formed: Lower <= Upper, Lower < +Inf,
// Upper > -Inf, and neither bound NaN. COUNT constraints must have a
// non-negative effective range.
func (c Constraint) Validate() error {
	if math.IsNaN(c.Lower) || math.IsNaN(c.Upper) {
		return fmt.Errorf("constraint: %s has NaN bound", c)
	}
	if c.Lower > c.Upper {
		return fmt.Errorf("constraint: %s has empty range [%g, %g]", c, c.Lower, c.Upper)
	}
	if math.IsInf(c.Lower, 1) {
		return fmt.Errorf("constraint: %s lower bound cannot be +Inf", c)
	}
	if math.IsInf(c.Upper, -1) {
		return fmt.Errorf("constraint: %s upper bound cannot be -Inf", c)
	}
	if c.Agg == Count && c.Upper < 1 {
		return fmt.Errorf("constraint: %s upper bound below 1 forbids all regions", c)
	}
	return nil
}

// Contains reports whether the aggregate value v satisfies the range.
func (c Constraint) Contains(v float64) bool {
	return v >= c.Lower && v <= c.Upper
}

// Bounded reports whether both range ends are finite.
func (c Constraint) Bounded() bool {
	return !math.IsInf(c.Lower, -1) && !math.IsInf(c.Upper, 1)
}

// Unbounded reports whether neither range end is finite, i.e. the
// constraint is trivially satisfied.
func (c Constraint) Unbounded() bool {
	return math.IsInf(c.Lower, -1) && math.IsInf(c.Upper, 1)
}

// String formats the constraint in the SQL-ish notation the parser accepts.
func (c Constraint) String() string {
	name := c.Agg.String() + "(" + c.Attr + ")"
	if c.Agg == Count && c.Attr == "" {
		name = "COUNT(*)"
	}
	switch {
	case c.Unbounded():
		return name + " in [-inf, inf]"
	case math.IsInf(c.Upper, 1):
		return fmt.Sprintf("%s >= %g", name, c.Lower)
	case math.IsInf(c.Lower, -1):
		return fmt.Sprintf("%s <= %g", name, c.Upper)
	default:
		return fmt.Sprintf("%s in [%g, %g]", name, c.Lower, c.Upper)
	}
}

// InvalidArea reports whether an area with attribute value v can never be
// part of any region satisfying c (feasibility phase filtering, Section V-A):
// MIN: v < l (the region minimum would drop below l);
// MAX: v > u (the region maximum would exceed u);
// SUM: v > u (the region sum, with non-negative attributes, would exceed u).
// AVG and COUNT never invalidate single areas at this stage.
func (c Constraint) InvalidArea(v float64) bool {
	switch c.Agg {
	case Min:
		return v < c.Lower
	case Max:
		return v > c.Upper
	case Sum:
		return v > c.Upper
	default:
		return false
	}
}

// SeedArea reports whether an area with value v meets both bounds of an
// extrema constraint and can therefore anchor a region for it (Step 1).
// Non-extrema constraints do not define seeds and always return false.
func (c Constraint) SeedArea(v float64) bool {
	switch c.Agg {
	case Min, Max:
		return v >= c.Lower && v <= c.Upper
	default:
		return false
	}
}

// Set is an ordered collection of constraints forming an EMP query.
type Set []Constraint

// Validate validates each constraint and rejects duplicate
// (aggregate, attribute) pairs, which would be contradictory or redundant.
func (s Set) Validate() error {
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if err := c.Validate(); err != nil {
			return err
		}
		key := c.Agg.String() + "(" + c.Attr + ")"
		if seen[key] {
			return fmt.Errorf("constraint: duplicate constraint on %s", key)
		}
		seen[key] = true
	}
	return nil
}

// ByFamily returns the constraints belonging to the given family, in order.
func (s Set) ByFamily(f Family) Set {
	var out Set
	for _, c := range s {
		if c.Agg.Family() == f {
			out = append(out, c)
		}
	}
	return out
}

// ByAggregate returns the constraints using the given aggregate, in order.
func (s Set) ByAggregate(a Aggregate) Set {
	var out Set
	for _, c := range s {
		if c.Agg == a {
			out = append(out, c)
		}
	}
	return out
}

// HasAggregate reports whether any constraint uses the aggregate.
func (s Set) HasAggregate(a Aggregate) bool {
	for _, c := range s {
		if c.Agg == a {
			return true
		}
	}
	return false
}

// Attrs returns the distinct attribute names referenced by the set, in
// first-appearance order. COUNT(*) constraints contribute nothing.
func (s Set) Attrs() []string {
	var out []string
	seen := make(map[string]bool)
	for _, c := range s {
		if c.Attr == "" {
			continue
		}
		if !seen[c.Attr] {
			seen[c.Attr] = true
			out = append(out, c.Attr)
		}
	}
	return out
}

// String joins the constraint notations with "; ".
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return strings.Join(parts, "; ")
}
