package constraint

import (
	"fmt"
	"math"
)

// Evaluator binds a constraint Set to the attribute columns of a concrete
// dataset so regions can be validated without string lookups in inner loops.
type Evaluator struct {
	set  Set
	vals [][]float64 // per constraint; nil for COUNT(*)
}

// NewEvaluator resolves every constraint attribute through lookup, which
// returns the dataset column (value per area) for an attribute name, or nil
// when the attribute does not exist.
func NewEvaluator(set Set, lookup func(attr string) []float64) (*Evaluator, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	ev := &Evaluator{set: set, vals: make([][]float64, len(set))}
	for i, c := range set {
		if c.Agg == Count {
			continue
		}
		col := lookup(c.Attr)
		if col == nil {
			return nil, fmt.Errorf("constraint: attribute %q not found in dataset", c.Attr)
		}
		ev.vals[i] = col
	}
	return ev, nil
}

// Set returns the bound constraint set.
func (ev *Evaluator) Set() Set { return ev.set }

// Len returns the number of constraints.
func (ev *Evaluator) Len() int { return len(ev.set) }

// At returns the i-th constraint.
func (ev *Evaluator) At(i int) Constraint { return ev.set[i] }

// AreaValue returns area's value of constraint i's attribute. For COUNT
// constraints it returns 1 (each area contributes one to the count).
func (ev *Evaluator) AreaValue(i, area int) float64 {
	if ev.vals[i] == nil {
		return 1
	}
	return ev.vals[i][area]
}

// Tracker maintains the aggregate state of one region incrementally:
// count, and per constraint the running sum, minimum and maximum with
// multiplicity counters so removals only trigger a recompute when the last
// copy of an extreme leaves the region.
type Tracker struct {
	ev     *Evaluator
	n      int
	sum    []float64
	min    []float64
	max    []float64
	minCnt []int
	maxCnt []int
}

// NewTracker returns an empty region tracker for the evaluator's constraints.
func (ev *Evaluator) NewTracker() *Tracker {
	m := len(ev.set)
	t := &Tracker{
		ev:     ev,
		sum:    make([]float64, m),
		min:    make([]float64, m),
		max:    make([]float64, m),
		minCnt: make([]int, m),
		maxCnt: make([]int, m),
	}
	for i := range t.min {
		t.min[i] = math.Inf(1)
		t.max[i] = math.Inf(-1)
	}
	return t
}

// Count returns the number of areas tracked.
func (t *Tracker) Count() int { return t.n }

// Add registers an area's attribute values.
func (t *Tracker) Add(area int) {
	t.n++
	for i := range t.sum {
		v := t.ev.AreaValue(i, area)
		t.sum[i] += v
		switch {
		case v < t.min[i]:
			t.min[i], t.minCnt[i] = v, 1
		case v == t.min[i]:
			t.minCnt[i]++
		}
		switch {
		case v > t.max[i]:
			t.max[i], t.maxCnt[i] = v, 1
		case v == t.max[i]:
			t.maxCnt[i]++
		}
	}
}

// Remove unregisters an area. remaining must be the region's member list
// after the removal; it is only scanned when the removed value was the last
// copy of a tracked extreme.
func (t *Tracker) Remove(area int, remaining []int) {
	t.n--
	if t.n == 0 {
		for i := range t.sum {
			t.sum[i] = 0
			t.min[i] = math.Inf(1)
			t.max[i] = math.Inf(-1)
			t.minCnt[i], t.maxCnt[i] = 0, 0
		}
		return
	}
	for i := range t.sum {
		v := t.ev.AreaValue(i, area)
		t.sum[i] -= v
		if v == t.min[i] {
			t.minCnt[i]--
			if t.minCnt[i] == 0 {
				t.recomputeMin(i, remaining)
			}
		}
		if v == t.max[i] {
			t.maxCnt[i]--
			if t.maxCnt[i] == 0 {
				t.recomputeMax(i, remaining)
			}
		}
	}
}

func (t *Tracker) recomputeMin(i int, members []int) {
	mn, cnt := math.Inf(1), 0
	for _, a := range members {
		v := t.ev.AreaValue(i, a)
		switch {
		case v < mn:
			mn, cnt = v, 1
		case v == mn:
			cnt++
		}
	}
	t.min[i], t.minCnt[i] = mn, cnt
}

func (t *Tracker) recomputeMax(i int, members []int) {
	mx, cnt := math.Inf(-1), 0
	for _, a := range members {
		v := t.ev.AreaValue(i, a)
		switch {
		case v > mx:
			mx, cnt = v, 1
		case v == mx:
			cnt++
		}
	}
	t.max[i], t.maxCnt[i] = mx, cnt
}

// Reset returns the tracker to its freshly-created empty state, keeping the
// evaluator binding and slice capacity. It lets region objects be recycled
// without reallocating their aggregate arrays.
func (t *Tracker) Reset() {
	t.n = 0
	for i := range t.sum {
		t.sum[i] = 0
		t.min[i] = math.Inf(1)
		t.max[i] = math.Inf(-1)
		t.minCnt[i], t.maxCnt[i] = 0, 0
	}
}

// Merge folds another tracker's state into t. The other tracker's region
// must be disjoint from t's.
func (t *Tracker) Merge(o *Tracker) {
	t.n += o.n
	for i := range t.sum {
		t.sum[i] += o.sum[i]
		switch {
		case o.min[i] < t.min[i]:
			t.min[i], t.minCnt[i] = o.min[i], o.minCnt[i]
		case o.min[i] == t.min[i]:
			t.minCnt[i] += o.minCnt[i]
		}
		switch {
		case o.max[i] > t.max[i]:
			t.max[i], t.maxCnt[i] = o.max[i], o.maxCnt[i]
		case o.max[i] == t.max[i]:
			t.maxCnt[i] += o.maxCnt[i]
		}
	}
}

// Clone returns an independent copy of the tracker.
func (t *Tracker) Clone() *Tracker {
	c := &Tracker{
		ev:     t.ev,
		n:      t.n,
		sum:    append([]float64(nil), t.sum...),
		min:    append([]float64(nil), t.min...),
		max:    append([]float64(nil), t.max...),
		minCnt: append([]int(nil), t.minCnt...),
		maxCnt: append([]int(nil), t.maxCnt...),
	}
	return c
}

// Value returns the current aggregate value of constraint i. For an empty
// region SUM and COUNT are 0, AVG is NaN, MIN is +Inf and MAX is -Inf.
func (t *Tracker) Value(i int) float64 {
	switch t.ev.set[i].Agg {
	case Sum:
		return t.sum[i]
	case Count:
		return float64(t.n)
	case Avg:
		if t.n == 0 {
			return math.NaN()
		}
		return t.sum[i] / float64(t.n)
	case Min:
		return t.min[i]
	case Max:
		return t.max[i]
	default:
		return math.NaN()
	}
}

// ValueAfterAdd returns the aggregate value of constraint i if area were
// added, without mutating the tracker.
func (t *Tracker) ValueAfterAdd(i, area int) float64 {
	v := t.ev.AreaValue(i, area)
	switch t.ev.set[i].Agg {
	case Sum:
		return t.sum[i] + v
	case Count:
		return float64(t.n + 1)
	case Avg:
		return (t.sum[i] + v) / float64(t.n+1)
	case Min:
		return math.Min(t.min[i], v)
	case Max:
		return math.Max(t.max[i], v)
	default:
		return math.NaN()
	}
}

// Satisfied reports whether constraint i currently holds.
func (t *Tracker) Satisfied(i int) bool {
	if t.n == 0 {
		return false
	}
	return t.ev.set[i].Contains(t.Value(i))
}

// SatisfiedAll reports whether every constraint holds. Empty regions never
// satisfy a non-empty constraint set; with no constraints any non-empty
// region is valid.
func (t *Tracker) SatisfiedAll() bool {
	if t.n == 0 {
		return false
	}
	for i := range t.ev.set {
		if !t.ev.set[i].Contains(t.Value(i)) {
			return false
		}
	}
	return true
}

// SatisfiedAllAfterAdd reports whether every constraint would hold if the
// area were added.
func (t *Tracker) SatisfiedAllAfterAdd(area int) bool {
	for i := range t.ev.set {
		if !t.ev.set[i].Contains(t.ValueAfterAdd(i, area)) {
			return false
		}
	}
	return true
}

// SatisfiedAllAfterMerge reports whether every constraint would hold on the
// union of t's and o's regions.
func (t *Tracker) SatisfiedAllAfterMerge(o *Tracker) bool {
	n := t.n + o.n
	if n == 0 {
		return false
	}
	for i, c := range t.ev.set {
		var v float64
		switch c.Agg {
		case Sum:
			v = t.sum[i] + o.sum[i]
		case Count:
			v = float64(n)
		case Avg:
			v = (t.sum[i] + o.sum[i]) / float64(n)
		case Min:
			v = math.Min(t.min[i], o.min[i])
		case Max:
			v = math.Max(t.max[i], o.max[i])
		}
		if !c.Contains(v) {
			return false
		}
	}
	return true
}

// Compute builds a tracker directly from a member list; it is the naive
// reference used by tests and by bulk region construction.
func (ev *Evaluator) Compute(members []int) *Tracker {
	t := ev.NewTracker()
	for _, a := range members {
		t.Add(a)
	}
	return t
}
