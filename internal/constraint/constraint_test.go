package constraint

import (
	"math"
	"strings"
	"testing"
)

func TestAggregateString(t *testing.T) {
	tests := []struct {
		agg  Aggregate
		want string
	}{
		{Min, "MIN"}, {Max, "MAX"}, {Avg, "AVG"}, {Sum, "SUM"}, {Count, "COUNT"},
		{Aggregate(42), "Aggregate(42)"},
	}
	for _, tc := range tests {
		if got := tc.agg.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", int(tc.agg), got, tc.want)
		}
	}
}

func TestAggregateFamily(t *testing.T) {
	tests := []struct {
		agg  Aggregate
		want Family
	}{
		{Min, Extrema}, {Max, Extrema}, {Avg, Centrality}, {Sum, Counting}, {Count, Counting},
	}
	for _, tc := range tests {
		if got := tc.agg.Family(); got != tc.want {
			t.Errorf("%v.Family() = %v, want %v", tc.agg, got, tc.want)
		}
	}
}

func TestFamilyString(t *testing.T) {
	if Extrema.String() != "extrema" || Centrality.String() != "centrality" || Counting.String() != "counting" {
		t.Error("family names wrong")
	}
	if !strings.HasPrefix(Family(9).String(), "Family(") {
		t.Error("unknown family string")
	}
}

func TestParseAggregate(t *testing.T) {
	tests := []struct {
		in      string
		want    Aggregate
		wantErr bool
	}{
		{"MIN", Min, false},
		{"min", Min, false},
		{" Max ", Max, false},
		{"AVG", Avg, false},
		{"mean", Avg, false},
		{"average", Avg, false},
		{"SUM", Sum, false},
		{"count", Count, false},
		{"median", 0, true},
		{"", 0, true},
	}
	for _, tc := range tests {
		got, err := ParseAggregate(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseAggregate(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseAggregate(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestConstraintValidate(t *testing.T) {
	tests := []struct {
		name    string
		c       Constraint
		wantErr bool
	}{
		{"two-sided", New(Avg, "X", 1, 2), false},
		{"at least", AtLeast(Sum, "X", 5), false},
		{"at most", AtMost(Min, "X", 5), false},
		{"unbounded", New(Sum, "X", math.Inf(-1), math.Inf(1)), false},
		{"empty range", New(Avg, "X", 3, 2), true},
		{"NaN lower", New(Avg, "X", math.NaN(), 2), true},
		{"NaN upper", New(Avg, "X", 0, math.NaN()), true},
		{"lower +inf", New(Avg, "X", math.Inf(1), math.Inf(1)), true},
		{"upper -inf", New(Avg, "X", math.Inf(-1), math.Inf(-1)), true},
		{"count upper < 1", AtMost(Count, "", 0.5), true},
		{"count ok", New(Count, "", 1, 4), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestConstraintContainsBounded(t *testing.T) {
	c := New(Avg, "X", 10, 20)
	for _, tc := range []struct {
		v    float64
		want bool
	}{{9.99, false}, {10, true}, {15, true}, {20, true}, {20.01, false}} {
		if got := c.Contains(tc.v); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.v, got, tc.want)
		}
	}
	if !c.Bounded() || c.Unbounded() {
		t.Error("bounded flags wrong")
	}
	open := AtLeast(Sum, "X", 5)
	if open.Bounded() {
		t.Error("one-sided constraint reported as bounded")
	}
	free := New(Sum, "X", math.Inf(-1), math.Inf(1))
	if !free.Unbounded() {
		t.Error("unbounded constraint not detected")
	}
}

func TestConstraintString(t *testing.T) {
	tests := []struct {
		c    Constraint
		want string
	}{
		{AtLeast(Sum, "POP", 20000), "SUM(POP) >= 20000"},
		{AtMost(Min, "POP", 3000), "MIN(POP) <= 3000"},
		{New(Avg, "EMP", 1500, 3500), "AVG(EMP) in [1500, 3500]"},
		{New(Count, "", 2, 4), "COUNT(*) in [2, 4]"},
		{New(Sum, "X", math.Inf(-1), math.Inf(1)), "SUM(X) in [-inf, inf]"},
	}
	for _, tc := range tests {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestInvalidArea(t *testing.T) {
	tests := []struct {
		name string
		c    Constraint
		v    float64
		want bool
	}{
		{"min below lower", New(Min, "X", 10, 20), 5, true},
		{"min inside", New(Min, "X", 10, 20), 15, false},
		{"min above upper ok", New(Min, "X", 10, 20), 25, false},
		{"max above upper", New(Max, "X", 10, 20), 25, true},
		{"max inside", New(Max, "X", 10, 20), 15, false},
		{"max below lower ok", New(Max, "X", 10, 20), 5, false},
		{"sum above upper", New(Sum, "X", 10, 20), 25, true},
		{"sum inside", New(Sum, "X", 10, 20), 15, false},
		{"avg never invalid", New(Avg, "X", 10, 20), 1000, false},
		{"count never invalid", New(Count, "", 1, 2), 1000, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.InvalidArea(tc.v); got != tc.want {
				t.Errorf("InvalidArea(%v) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

func TestSeedArea(t *testing.T) {
	min := New(Min, "X", 10, 20)
	max := New(Max, "X", 10, 20)
	sum := New(Sum, "X", 10, 20)
	if !min.SeedArea(15) || min.SeedArea(25) || min.SeedArea(5) {
		t.Error("MIN seed rule wrong")
	}
	if !max.SeedArea(10) || !max.SeedArea(20) || max.SeedArea(21) {
		t.Error("MAX seed rule wrong")
	}
	if sum.SeedArea(15) {
		t.Error("SUM must not define seeds")
	}
}

func TestSetValidate(t *testing.T) {
	good := Set{AtMost(Min, "A", 5), AtLeast(Sum, "A", 1), New(Avg, "B", 0, 9)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	dup := Set{AtMost(Min, "A", 5), AtLeast(Min, "A", 1)}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate (agg, attr) accepted")
	}
	bad := Set{New(Avg, "A", 5, 2)}
	if err := bad.Validate(); err == nil {
		t.Error("invalid member accepted")
	}
}

func TestSetAccessors(t *testing.T) {
	s := Set{
		AtMost(Min, "A", 5),
		New(Avg, "B", 0, 9),
		AtLeast(Sum, "C", 1),
		New(Count, "", 1, 4),
		New(Max, "A", 2, 3),
	}
	if got := s.ByFamily(Extrema); len(got) != 2 {
		t.Errorf("extrema count = %d, want 2", len(got))
	}
	if got := s.ByFamily(Centrality); len(got) != 1 || got[0].Agg != Avg {
		t.Errorf("centrality = %v", got)
	}
	if got := s.ByFamily(Counting); len(got) != 2 {
		t.Errorf("counting count = %d, want 2", len(got))
	}
	if got := s.ByAggregate(Max); len(got) != 1 || got[0].Attr != "A" {
		t.Errorf("ByAggregate(Max) = %v", got)
	}
	if !s.HasAggregate(Count) || s.HasAggregate(Aggregate(9)) {
		t.Error("HasAggregate wrong")
	}
	attrs := s.Attrs()
	want := []string{"A", "B", "C"}
	if len(attrs) != len(want) {
		t.Fatalf("Attrs = %v, want %v", attrs, want)
	}
	for i := range want {
		if attrs[i] != want[i] {
			t.Errorf("Attrs[%d] = %q, want %q", i, attrs[i], want[i])
		}
	}
	if !strings.Contains(s.String(), "; ") {
		t.Error("Set.String should join with semicolons")
	}
}
