package constraint

import "math"

// ValueAfterRemove returns the aggregate value of constraint i if area were
// removed, without mutating the tracker. members must be the current member
// list (including area). When the removed value is the last copy of a
// tracked extreme the remaining members are scanned, otherwise the
// computation is O(1).
func (t *Tracker) ValueAfterRemove(i, area int, members []int) float64 {
	v := t.ev.AreaValue(i, area)
	n := t.n - 1
	switch t.ev.set[i].Agg {
	case Sum:
		return t.sum[i] - v
	case Count:
		return float64(n)
	case Avg:
		if n == 0 {
			return math.NaN()
		}
		return (t.sum[i] - v) / float64(n)
	case Min:
		if n == 0 {
			return math.Inf(1)
		}
		if v != t.min[i] || t.minCnt[i] > 1 {
			return t.min[i]
		}
		mn := math.Inf(1)
		skipped := false
		for _, a := range members {
			if a == area && !skipped {
				skipped = true
				continue
			}
			if w := t.ev.AreaValue(i, a); w < mn {
				mn = w
			}
		}
		return mn
	case Max:
		if n == 0 {
			return math.Inf(-1)
		}
		if v != t.max[i] || t.maxCnt[i] > 1 {
			return t.max[i]
		}
		mx := math.Inf(-1)
		skipped := false
		for _, a := range members {
			if a == area && !skipped {
				skipped = true
				continue
			}
			if w := t.ev.AreaValue(i, a); w > mx {
				mx = w
			}
		}
		return mx
	default:
		return math.NaN()
	}
}

// SatisfiedAllAfterRemove reports whether every constraint would hold after
// removing the area. An emptied region never satisfies.
func (t *Tracker) SatisfiedAllAfterRemove(area int, members []int) bool {
	if t.n <= 1 {
		return false
	}
	for i := range t.ev.set {
		if !t.ev.set[i].Contains(t.ValueAfterRemove(i, area, members)) {
			return false
		}
	}
	return true
}

// UpperSafeAfterAdd reports whether adding the area keeps the region inside
// every constraint's "hard" side: the full range for extrema and centrality
// constraints, but only the upper bound for counting constraints (whose
// lower bounds are satisfied later by the monotonic-adjustment step).
func (t *Tracker) UpperSafeAfterAdd(area int) bool {
	for i, c := range t.ev.set {
		v := t.ValueAfterAdd(i, area)
		switch c.Agg {
		case Sum, Count:
			if v > c.Upper {
				return false
			}
		default:
			if !c.Contains(v) {
				return false
			}
		}
	}
	return true
}

// UpperSafeAfterMerge is UpperSafeAfterAdd for region unions: the merged
// region must satisfy extrema and centrality ranges fully and counting
// upper bounds, while counting lower bounds may still be pending.
func (t *Tracker) UpperSafeAfterMerge(o *Tracker) bool {
	n := t.n + o.n
	if n == 0 {
		return false
	}
	for i, c := range t.ev.set {
		var v float64
		switch c.Agg {
		case Sum:
			v = t.sum[i] + o.sum[i]
		case Count:
			v = float64(n)
		case Avg:
			v = (t.sum[i] + o.sum[i]) / float64(n)
		case Min:
			v = math.Min(t.min[i], o.min[i])
		case Max:
			v = math.Max(t.max[i], o.max[i])
		}
		switch c.Agg {
		case Sum, Count:
			if v > c.Upper {
				return false
			}
		default:
			if !c.Contains(v) {
				return false
			}
		}
	}
	return true
}
