package constraint

import (
	"math/rand"
	"testing"
)

func benchEvaluator(b *testing.B, n int) *Evaluator {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	col := make([]float64, n)
	for i := range col {
		col[i] = rng.Float64() * 5000
	}
	set := Set{
		AtMost(Min, "A", 3000),
		New(Avg, "A", 1500, 3500),
		AtLeast(Sum, "A", 20000),
		New(Count, "", 1, 1000),
	}
	ev, err := NewEvaluator(set, func(string) []float64 { return col })
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// BenchmarkTrackerAdd measures the O(m) incremental add used in every
// construction and local-search inner loop.
func BenchmarkTrackerAdd(b *testing.B) {
	ev := benchEvaluator(b, 10000)
	tr := ev.NewTracker()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(i % 10000)
	}
}

// BenchmarkTrackerAddRemove measures a full add/remove cycle including the
// amortized extreme recomputation.
func BenchmarkTrackerAddRemove(b *testing.B) {
	ev := benchEvaluator(b, 10000)
	tr := ev.NewTracker()
	members := make([]int, 0, 64)
	for i := 0; i < 64; i++ {
		tr.Add(i)
		members = append(members, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := 64 + i%1000
		tr.Add(a)
		members = append(members, a)
		last := members[len(members)-1]
		members = members[:len(members)-1]
		tr.Remove(last, members)
	}
}

// BenchmarkSatisfiedAllAfterAdd measures the prospective-move check.
func BenchmarkSatisfiedAllAfterAdd(b *testing.B) {
	ev := benchEvaluator(b, 10000)
	tr := ev.Compute([]int{0, 1, 2, 3, 4, 5, 6, 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.SatisfiedAllAfterAdd(i % 10000)
	}
}

// BenchmarkParse measures constraint-language parsing.
func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSet("MIN(POP16UP) <= 3000; AVG(EMPLOYED) in [1500,3500]; SUM(TOTALPOP) >= 20k"); err != nil {
			b.Fatal(err)
		}
	}
}
