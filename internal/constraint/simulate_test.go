package constraint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueAfterRemoveMatchesRemove(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 25)
		for i := range vals {
			vals[i] = float64(rng.Intn(8)) // duplicates likely
		}
		set := Set{
			AtLeast(Sum, "A", 0), AtLeast(Min, "A", 0),
			AtMost(Max, "A", 1e9), New(Avg, "A", 0, 1e9), AtLeast(Count, "", 0),
		}
		ev, _ := NewEvaluator(set, func(string) []float64 { return vals })
		members := []int{}
		tr := ev.NewTracker()
		for i := 0; i < 12; i++ {
			a := rng.Intn(len(vals))
			tr.Add(a)
			members = append(members, a)
		}
		for trial := 0; trial < 6; trial++ {
			idx := rng.Intn(len(members))
			area := members[idx]
			for i := range set {
				predicted := tr.ValueAfterRemove(i, area, members)
				// actual removal on a clone
				cl := tr.Clone()
				rest := make([]int, 0, len(members)-1)
				skipped := false
				for _, m := range members {
					if m == area && !skipped {
						skipped = true
						continue
					}
					rest = append(rest, m)
				}
				cl.Remove(area, rest)
				actual := cl.Value(i)
				if math.IsNaN(predicted) && math.IsNaN(actual) {
					continue
				}
				if math.Abs(predicted-actual) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValueAfterRemoveEmpties(t *testing.T) {
	vals := []float64{5}
	set := Set{AtLeast(Sum, "A", 0), AtLeast(Min, "A", 0), AtMost(Max, "A", 10), New(Avg, "A", 0, 10)}
	ev, _ := NewEvaluator(set, func(string) []float64 { return vals })
	tr := ev.Compute([]int{0})
	if got := tr.ValueAfterRemove(0, 0, []int{0}); got != 0 {
		t.Errorf("SUM after removing only member = %v, want 0", got)
	}
	if !math.IsNaN(tr.ValueAfterRemove(3, 0, []int{0})) {
		t.Error("AVG of emptied region should be NaN")
	}
	if !math.IsInf(tr.ValueAfterRemove(1, 0, []int{0}), 1) {
		t.Error("MIN of emptied region should be +Inf")
	}
	if !math.IsInf(tr.ValueAfterRemove(2, 0, []int{0}), -1) {
		t.Error("MAX of emptied region should be -Inf")
	}
	if tr.SatisfiedAllAfterRemove(0, []int{0}) {
		t.Error("emptying a region must not satisfy")
	}
}

func TestSatisfiedAllAfterRemove(t *testing.T) {
	vals := []float64{10, 20, 30}
	set := Set{New(Sum, "A", 25, 100)}
	ev, _ := NewEvaluator(set, func(string) []float64 { return vals })
	tr := ev.Compute([]int{0, 1, 2}) // sum 60
	if !tr.SatisfiedAllAfterRemove(0, []int{0, 1, 2}) {
		t.Error("sum 50 should satisfy")
	}
	tr2 := ev.Compute([]int{0, 1}) // sum 30
	if tr2.SatisfiedAllAfterRemove(1, []int{0, 1}) {
		t.Error("sum 10 < 25 should fail")
	}
}

func TestUpperSafeAfterAdd(t *testing.T) {
	vals := []float64{10, 20, 100}
	set := Set{
		New(Sum, "A", 50, 60), // lower bound pending is OK
		New(Avg, "A", 5, 40),  // full range enforced
	}
	ev, _ := NewEvaluator(set, func(string) []float64 { return vals })
	tr := ev.Compute([]int{0}) // sum 10, avg 10
	if !tr.UpperSafeAfterAdd(1) {
		t.Error("sum 30 <= 60 and avg 15 in range: safe")
	}
	if tr.UpperSafeAfterAdd(2) {
		t.Error("adding 100 pushes sum to 110 > 60 and avg to 55 > 40")
	}
	// Avg violation alone blocks.
	set2 := Set{New(Avg, "A", 5, 14)}
	ev2, _ := NewEvaluator(set2, func(string) []float64 { return vals })
	tr2 := ev2.Compute([]int{0})
	if tr2.UpperSafeAfterAdd(1) {
		t.Error("avg 15 > 14 must block even though no counting constraint")
	}
}

func TestUpperSafeAfterMerge(t *testing.T) {
	vals := []float64{10, 20, 100, 5}
	set := Set{New(Sum, "A", 50, 120), New(Min, "A", 3, 1e9)}
	ev, _ := NewEvaluator(set, func(string) []float64 { return vals })
	a := ev.Compute([]int{0, 1}) // sum 30
	b := ev.Compute([]int{2})    // sum 100
	if a.UpperSafeAfterMerge(b) {
		t.Error("sum 130 > 120 must block")
	}
	c := ev.Compute([]int{3}) // sum 5
	if !a.UpperSafeAfterMerge(c) {
		t.Error("sum 35 <= 120, min 5 >= 3: safe even though below lower bound")
	}
	e1, e2 := ev.NewTracker(), ev.NewTracker()
	if e1.UpperSafeAfterMerge(e2) {
		t.Error("two empty trackers merge to empty: unsafe")
	}
}

func TestSatisfiedAllAfterRemoveWhenSizeOne(t *testing.T) {
	vals := []float64{10}
	set := Set{}
	ev, _ := NewEvaluator(set, func(string) []float64 { return vals })
	tr := ev.Compute([]int{0})
	if tr.SatisfiedAllAfterRemove(0, []int{0}) {
		t.Error("removing only member empties the region")
	}
}
