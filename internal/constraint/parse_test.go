package constraint

import (
	"math"
	"testing"
)

func TestParseValid(t *testing.T) {
	inf := math.Inf(1)
	tests := []struct {
		in   string
		want Constraint
	}{
		{"SUM(TOTALPOP) >= 20000", New(Sum, "TOTALPOP", 20000, inf)},
		{"sum(TOTALPOP)>=20k", New(Sum, "TOTALPOP", 20000, inf)},
		{"MIN(POP16UP) <= 3000", New(Min, "POP16UP", -inf, 3000)},
		{"AVG(EMPLOYED) in [1500, 3500]", New(Avg, "EMPLOYED", 1500, 3500)},
		{"AVG(EMPLOYED) in [1.5k,3.5K]", New(Avg, "EMPLOYED", 1500, 3500)},
		{"avg(EMPLOYED) between 1500 and 3500", New(Avg, "EMPLOYED", 1500, 3500)},
		{"AVG(EMPLOYED) BETWEEN 1500 AND 3500", New(Avg, "EMPLOYED", 1500, 3500)},
		{"1500 <= AVG(EMPLOYED) <= 3500", New(Avg, "EMPLOYED", 1500, 3500)},
		{"COUNT(*) <= 4", New(Count, "", -inf, 4)},
		{"COUNT >= 2", New(Count, "", 2, inf)},
		{"COUNT(TRACTS) <= 4", New(Count, "", -inf, 4)}, // attribute normalized away
		{"MAX(INCOME) in [-inf, 9]", New(Max, "INCOME", -inf, 9)},
		{"SUM(POP) in [2m, inf]", New(Sum, "POP", 2e6, inf)},
		{"MIN( POP16UP ) <= 3k", New(Min, "POP16UP", -inf, 3000)},
	}
	for _, tc := range tests {
		t.Run(tc.in, func(t *testing.T) {
			got, err := Parse(tc.in)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.in, err)
			}
			if got.Agg != tc.want.Agg || got.Attr != tc.want.Attr {
				t.Errorf("Parse(%q) = %v, want %v", tc.in, got, tc.want)
			}
			if !eqBound(got.Lower, tc.want.Lower) || !eqBound(got.Upper, tc.want.Upper) {
				t.Errorf("Parse(%q) bounds = [%v,%v], want [%v,%v]", tc.in, got.Lower, got.Upper, tc.want.Lower, tc.want.Upper)
			}
		})
	}
}

func eqBound(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	return a == b
}

func TestParseInvalid(t *testing.T) {
	tests := []string{
		"",
		"   ",
		"MEDIAN(X) >= 5",
		"SUM >= 5",           // non-count aggregate without attribute
		"SUM() >= 5",         // empty attribute
		"SUM(X) > 5",         // strict comparison not in the grammar
		"SUM(X) >= ",         // missing number
		"SUM(X) >= banana",   // bad number
		"SUM(X",              // missing close paren
		"AVG(X) in 1500",     // bad range syntax
		"AVG(X) in [1500]",   // one bound
		"AVG(X) in [1,2,3]",  // three bounds
		"AVG(X) between 1 2", // missing and
		"AVG(X) between x and 2",
		"AVG(X) between 1 and y",
		"1 <= AVG(X) junk <= 2",
		"1 <= MEDIAN(X) <= 2",
		"1 <= AVG(X) <= zz",
		"AVG(X) ~ 5",
	}
	for _, in := range tests {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// String() of a parsed constraint must re-parse to the same constraint.
	exprs := []string{
		"SUM(TOTALPOP) >= 20000",
		"MIN(POP16UP) <= 3000",
		"AVG(EMPLOYED) in [1500, 3500]",
		"COUNT(*) <= 4",
	}
	for _, in := range exprs {
		c1, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		c2, err := Parse(c1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", c1.String(), err)
		}
		if c1 != c2 {
			t.Errorf("round trip %q -> %v -> %v", in, c1, c2)
		}
	}
}

func TestParseSet(t *testing.T) {
	set, err := ParseSet("MIN(POP16UP) <= 3000; AVG(EMPLOYED) in [1500,3500]\nSUM(TOTALPOP) >= 20k;;")
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	if len(set) != 3 {
		t.Fatalf("got %d constraints, want 3", len(set))
	}
	if set[0].Agg != Min || set[1].Agg != Avg || set[2].Agg != Sum {
		t.Errorf("aggregate order wrong: %v", set)
	}

	if _, err := ParseSet("MIN(A) <= 3; MIN(A) >= 1"); err == nil {
		t.Error("duplicate constraints accepted")
	}
	if _, err := ParseSet("BOGUS(A) <= 3"); err == nil {
		t.Error("bad member accepted")
	}
	empty, err := ParseSet("  ;  \n ")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty input: set=%v err=%v", empty, err)
	}
}

func TestParseNumberSuffixes(t *testing.T) {
	tests := []struct {
		in   string
		want float64
	}{
		{"5", 5}, {"5k", 5000}, {"5K", 5000}, {"2.5k", 2500},
		{"1m", 1e6}, {"1M", 1e6}, {"-3k", -3000}, {" 7 ", 7},
	}
	for _, tc := range tests {
		got, err := parseNumber(tc.in)
		if err != nil {
			t.Errorf("parseNumber(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseNumber(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, in := range []string{"", "k", "xk", "1.2.3"} {
		if _, err := parseNumber(in); err == nil {
			t.Errorf("parseNumber(%q) succeeded, want error", in)
		}
	}
}
