package constraint

import "testing"

// FuzzParse checks that the constraint parser never panics and that every
// successfully parsed constraint re-parses from its String() form to an
// equivalent constraint.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SUM(TOTALPOP) >= 20000",
		"MIN(POP16UP) <= 3k",
		"AVG(EMPLOYED) in [1500, 3500]",
		"avg(X) between 1 and 2",
		"1500 <= AVG(EMPLOYED) <= 3500",
		"COUNT(*) <= 4",
		"COUNT >= 2",
		"MAX() > ",
		"in [",
		"<= <= <=",
		"SUM(SUM(X)) >= 1",
		"AVG(X) in [-inf, inf]",
		"MIN(\x00) <= 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		c, err := Parse(expr)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			// Parse may produce an inverted range like "5 <= AVG(X) <= 2";
			// that is caught at Set level. Nothing more to check.
			return
		}
		back, err := Parse(c.String())
		if err != nil {
			t.Fatalf("String() %q of parsed %q does not re-parse: %v", c.String(), expr, err)
		}
		if back.Agg != c.Agg || back.Attr != c.Attr {
			t.Fatalf("round trip changed constraint: %v -> %v", c, back)
		}
	})
}

// FuzzParseSet checks multi-constraint parsing never panics.
func FuzzParseSet(f *testing.F) {
	f.Add("SUM(A) >= 1; AVG(B) in [1,2]")
	f.Add(";;;\n\n;")
	f.Add("MIN(A) <= 1; MIN(A) >= 0")
	f.Fuzz(func(t *testing.T, exprs string) {
		set, err := ParseSet(exprs)
		if err != nil {
			return
		}
		if verr := set.Validate(); verr != nil {
			t.Fatalf("ParseSet returned invalid set %v: %v", set, verr)
		}
	})
}
