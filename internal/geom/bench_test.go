package geom

import (
	"math/rand"
	"testing"
)

func benchLattice(n int) []Polygon {
	rng := rand.New(rand.NewSource(1))
	side := 1
	for side*side < n {
		side++
	}
	return Lattice(LatticeOptions{Cols: side, Rows: side, Cells: n, Jitter: 0.25, Rng: rng})
}

// BenchmarkRookAdjacency measures contiguity extraction, the operation that
// replaces the paper's QGIS spatial join.
func BenchmarkRookAdjacency(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		polys := benchLattice(n)
		b.Run(sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if adj := Adjacency(polys, Rook); len(adj) != n {
					b.Fatal("bad adjacency")
				}
			}
		})
	}
}

func BenchmarkQueenAdjacency(b *testing.B) {
	polys := benchLattice(5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if adj := Adjacency(polys, Queen); len(adj) != 5000 {
			b.Fatal("bad adjacency")
		}
	}
}

func BenchmarkPolygonCentroid(b *testing.B) {
	polys := benchLattice(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, pg := range polys {
			_ = pg.Centroid()
		}
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return itoa(n/1000) + "k"
	default:
		return itoa(n)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
