package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	return pts
}

// naiveWithin is the brute-force reference for Index.Within.
func naiveWithin(pts []Point, q Point, radius float64, exclude int) []int {
	var out []int
	for i, p := range pts {
		if i == exclude {
			continue
		}
		if p.Dist(q) <= radius+1e-12 {
			out = append(out, i)
		}
	}
	return out
}

func TestIndexWithinMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 80)
		ix := NewIndex(pts, 0)
		for trial := 0; trial < 5; trial++ {
			q := Point{rng.Float64() * 100, rng.Float64() * 100}
			radius := rng.Float64() * 30
			got := ix.Within(q, radius, -1)
			want := naiveWithin(pts, q, radius, -1)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIndexWithinEdgeCases(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {3, 4}}
	ix := NewIndex(pts, 0)
	if got := ix.Within(Point{0, 0}, -1, -1); got != nil {
		t.Error("negative radius should return nil")
	}
	got := ix.Within(Point{0, 0}, 0, -1)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("zero radius = %v, want [0]", got)
	}
	got = ix.Within(Point{0, 0}, 1, 0) // exclude index 0
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("excluded query = %v, want [1]", got)
	}
}

func TestIndexNearestMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 60)
		ix := NewIndex(pts, 0)
		q := Point{rng.Float64() * 100, rng.Float64() * 100}
		k := 1 + rng.Intn(8)
		got := ix.Nearest(q, k, -1)
		// Naive: sort all by distance.
		idx := make([]int, len(pts))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			da, db := pts[idx[a]].Dist(q), pts[idx[b]].Dist(q)
			if da != db {
				return da < db
			}
			return idx[a] < idx[b]
		})
		want := idx[:k]
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIndexNearestEdgeCases(t *testing.T) {
	if got := NewIndex(nil, 0).Nearest(Point{}, 3, -1); got != nil {
		t.Error("empty index should return nil")
	}
	pts := []Point{{0, 0}, {5, 0}}
	ix := NewIndex(pts, 0)
	if got := ix.Nearest(Point{0, 0}, 0, -1); got != nil {
		t.Error("k=0 should return nil")
	}
	got := ix.Nearest(Point{0, 0}, 5, -1) // k exceeds point count
	if len(got) != 2 {
		t.Errorf("k>n returned %v", got)
	}
	got = ix.Nearest(Point{1, 0}, 1, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("exclusion failed: %v", got)
	}
}

func TestKNNAdjacency(t *testing.T) {
	polys := Lattice(LatticeOptions{Cols: 5, Rows: 5})
	adj := KNNAdjacency(polys, 4)
	// Symmetric, irreflexive, and every area has >= 4 neighbors (k plus
	// symmetrization can add more).
	for i, nbs := range adj {
		if len(nbs) < 4 {
			t.Errorf("area %d has %d KNN neighbors, want >= 4", i, len(nbs))
		}
		for _, j := range nbs {
			if j == i {
				t.Errorf("self loop at %d", i)
			}
			if !containsInt(adj[j], i) {
				t.Errorf("asymmetric KNN edge %d->%d", i, j)
			}
		}
	}
	// On a unit lattice, each interior cell's 4 nearest centroids are its
	// rook neighbors.
	rook := GridNeighbors(5, 5, 0)
	center := 12 // (2,2)
	for _, j := range rook[center] {
		if !containsInt(adj[center], j) {
			t.Errorf("KNN(4) of center lacks rook neighbor %d: %v", j, adj[center])
		}
	}
}

func TestDistanceBandAdjacency(t *testing.T) {
	polys := Lattice(LatticeOptions{Cols: 4, Rows: 1})
	// Centroids at x = 0.5, 1.5, 2.5, 3.5. Band 1.0 links adjacent cells;
	// band 2.0 links next-but-one too.
	adj1 := DistanceBandAdjacency(polys, 1.0)
	if !equalIntSlices(adj1[0], []int{1}) || !equalIntSlices(adj1[1], []int{0, 2}) {
		t.Errorf("band 1.0: %v", adj1)
	}
	adj2 := DistanceBandAdjacency(polys, 2.0)
	if !equalIntSlices(adj2[0], []int{1, 2}) {
		t.Errorf("band 2.0 [0]: %v", adj2[0])
	}
	adj0 := DistanceBandAdjacency(polys, 0.5)
	for i, nbs := range adj0 {
		if len(nbs) != 0 {
			t.Errorf("band 0.5 should isolate all areas, got %d: %v", i, nbs)
		}
	}
}

func TestIndexLenAndDegenerate(t *testing.T) {
	ix := NewIndex([]Point{{1, 1}}, 0)
	if ix.Len() != 1 {
		t.Error("Len wrong")
	}
	// Identical points: cellSize fallback must not divide by zero.
	same := NewIndex([]Point{{2, 2}, {2, 2}, {2, 2}}, 0)
	got := same.Within(Point{2, 2}, 0.1, -1)
	if len(got) != 3 {
		t.Errorf("identical points query = %v", got)
	}
	if k := same.Nearest(Point{2, 2}, 2, -1); len(k) != 2 {
		t.Errorf("nearest among identical = %v", k)
	}
}
