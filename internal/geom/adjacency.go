package geom

import (
	"fmt"
	"math"
	"sort"
)

// Contiguity selects how polygon adjacency is derived.
type Contiguity int

const (
	// Rook contiguity: two areas are neighbors when they share a whole
	// edge (a pair of consecutive vertices).
	Rook Contiguity = iota
	// Queen contiguity: two areas are neighbors when they share at least
	// one vertex.
	Queen
)

// String returns the conventional GIS name of the contiguity rule.
func (c Contiguity) String() string {
	switch c {
	case Rook:
		return "rook"
	case Queen:
		return "queen"
	default:
		return fmt.Sprintf("Contiguity(%d)", int(c))
	}
}

// quantum is the coordinate snapping grid used when hashing vertices and
// edges. Polygon borders coming from the same source tile share exact
// coordinates; the quantum absorbs float formatting noise from IO round
// trips without merging genuinely distinct vertices.
const quantum = 1e-9

func snap(v float64) int64 {
	return int64(math.Round(v / quantum))
}

type vertexKey struct {
	X, Y int64
}

type edgeKey struct {
	A, B vertexKey
}

func keyOf(p Point) vertexKey { return vertexKey{snap(p.X), snap(p.Y)} }

// canonicalEdge orders the edge endpoints so that the key is direction
// independent: polygon A traverses the shared edge opposite to polygon B.
func canonicalEdge(p, q Point) edgeKey {
	a, b := keyOf(p), keyOf(q)
	if a.X > b.X || (a.X == b.X && a.Y > b.Y) {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// Adjacency computes the neighbor lists of the given polygons under the
// chosen contiguity rule. The result has one sorted, duplicate-free slice
// per polygon; adjacency is symmetric and irreflexive.
//
// Complexity is O(total vertices) expected: every edge (rook) or vertex
// (queen) is hashed once and each bucket is expanded pairwise. Degenerate
// inputs where many polygons meet at one vertex cost O(k^2) for that bucket,
// matching the true neighbor count.
func Adjacency(polys []Polygon, rule Contiguity) [][]int {
	switch rule {
	case Rook:
		return rookAdjacency(polys)
	case Queen:
		return queenAdjacency(polys)
	default:
		return rookAdjacency(polys)
	}
}

func rookAdjacency(polys []Polygon) [][]int {
	buckets := make(map[edgeKey][]int)
	for id, pg := range polys {
		r := pg.Outer
		for i := range r {
			p, q := r.Edge(i)
			k := canonicalEdge(p, q)
			buckets[k] = append(buckets[k], id)
		}
	}
	return expandBuckets(len(polys), buckets)
}

func queenAdjacency(polys []Polygon) [][]int {
	buckets := make(map[vertexKey][]int)
	for id, pg := range polys {
		seen := make(map[vertexKey]bool, len(pg.Outer))
		for _, p := range pg.Outer {
			k := keyOf(p)
			if seen[k] {
				continue
			}
			seen[k] = true
			buckets[k] = append(buckets[k], id)
		}
	}
	out := make(map[vertexKey][]int, len(buckets))
	for k, ids := range buckets {
		if len(ids) > 1 {
			out[k] = ids
		}
	}
	return expandVertexBuckets(len(polys), out)
}

func expandBuckets(n int, buckets map[edgeKey][]int) [][]int {
	sets := make([]map[int]bool, n)
	for _, ids := range buckets {
		link(sets, ids)
	}
	return finishAdjacency(sets, n)
}

func expandVertexBuckets(n int, buckets map[vertexKey][]int) [][]int {
	sets := make([]map[int]bool, n)
	for _, ids := range buckets {
		link(sets, ids)
	}
	return finishAdjacency(sets, n)
}

func link(sets []map[int]bool, ids []int) {
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := ids[i], ids[j]
			if a == b {
				continue
			}
			if sets[a] == nil {
				sets[a] = make(map[int]bool)
			}
			if sets[b] == nil {
				sets[b] = make(map[int]bool)
			}
			sets[a][b] = true
			sets[b][a] = true
		}
	}
}

func finishAdjacency(sets []map[int]bool, n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		if len(sets[i]) == 0 {
			adj[i] = []int{}
			continue
		}
		nb := make([]int, 0, len(sets[i]))
		for j := range sets[i] {
			nb = append(nb, j)
		}
		sort.Ints(nb)
		adj[i] = nb
	}
	return adj
}

// SharedBorderLength returns the total length of edges shared between the
// two polygons under rook contiguity. It is 0 when the polygons are not rook
// neighbors.
func SharedBorderLength(a, b Polygon) float64 {
	edges := make(map[edgeKey]float64)
	ra := a.Outer
	for i := range ra {
		p, q := ra.Edge(i)
		edges[canonicalEdge(p, q)] = p.Dist(q)
	}
	var total float64
	rb := b.Outer
	for i := range rb {
		p, q := rb.Edge(i)
		if l, ok := edges[canonicalEdge(p, q)]; ok {
			total += l
		}
	}
	return total
}
