// Package geom provides the planar geometry substrate for EMP: polygon
// areas, bounding boxes, and contiguity (adjacency) extraction.
//
// The paper builds its contiguity graphs by joining census-tract shapefiles
// in QGIS. This package replaces that GIS dependency: polygons are plain
// coordinate rings and rook/queen adjacency is computed directly from the
// geometry by hashing shared edges and shared vertices.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2-D coordinate. For synthetic datasets the units are abstract;
// for imported data they are whatever the source uses (degrees, meters).
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Ring is a closed sequence of vertices. The closing edge from the last
// vertex back to the first is implicit; callers must not repeat the first
// vertex at the end.
type Ring []Point

// Len returns the number of vertices in the ring.
func (r Ring) Len() int { return len(r) }

// Edge returns the i-th edge of the ring, from vertex i to vertex (i+1) mod n.
func (r Ring) Edge(i int) (Point, Point) {
	j := i + 1
	if j == len(r) {
		j = 0
	}
	return r[i], r[j]
}

// SignedArea returns the signed area of the ring using the shoelace formula.
// Counter-clockwise rings have positive area.
func (r Ring) SignedArea() float64 {
	if len(r) < 3 {
		return 0
	}
	var sum float64
	for i := range r {
		a, b := r.Edge(i)
		sum += a.X*b.Y - b.X*a.Y
	}
	return sum / 2
}

// Area returns the absolute area of the ring.
func (r Ring) Area() float64 { return math.Abs(r.SignedArea()) }

// Centroid returns the area centroid of the ring. For degenerate rings
// (area ~ 0) it falls back to the vertex average.
func (r Ring) Centroid() Point {
	a := r.SignedArea()
	if math.Abs(a) < 1e-12 {
		var c Point
		if len(r) == 0 {
			return c
		}
		for _, p := range r {
			c.X += p.X
			c.Y += p.Y
		}
		c.X /= float64(len(r))
		c.Y /= float64(len(r))
		return c
	}
	var cx, cy float64
	for i := range r {
		p, q := r.Edge(i)
		cross := p.X*q.Y - q.X*p.Y
		cx += (p.X + q.X) * cross
		cy += (p.Y + q.Y) * cross
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// Polygon is a simple polygon without holes. EMP areas are arbitrary
// polygons; holes do not affect contiguity so a single outer ring suffices
// for the algorithmic substrate.
type Polygon struct {
	Outer Ring
}

// Area returns the polygon area.
func (pg Polygon) Area() float64 { return pg.Outer.Area() }

// Centroid returns the polygon centroid.
func (pg Polygon) Centroid() Point { return pg.Outer.Centroid() }

// BBox returns the axis-aligned bounding box of the polygon.
func (pg Polygon) BBox() BBox {
	b := EmptyBBox()
	for _, p := range pg.Outer {
		b.Extend(p)
	}
	return b
}

// Contains reports whether pt lies strictly inside the polygon, using the
// even-odd ray casting rule. Points exactly on the boundary may report
// either value.
func (pg Polygon) Contains(pt Point) bool {
	in := false
	r := pg.Outer
	for i := range r {
		a, b := r.Edge(i)
		if (a.Y > pt.Y) != (b.Y > pt.Y) {
			x := a.X + (pt.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if pt.X < x {
				in = !in
			}
		}
	}
	return in
}

// Validate checks the polygon for structural problems: too few vertices,
// repeated consecutive vertices, or zero area.
func (pg Polygon) Validate() error {
	r := pg.Outer
	if len(r) < 3 {
		return fmt.Errorf("geom: polygon has %d vertices, need at least 3", len(r))
	}
	for i := range r {
		a, b := r.Edge(i)
		if a == b {
			return fmt.Errorf("geom: polygon has repeated consecutive vertex at index %d", i)
		}
	}
	if r.Area() == 0 {
		return fmt.Errorf("geom: polygon has zero area")
	}
	return nil
}

// BBox is an axis-aligned bounding box.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyBBox returns an inverted box that Extend can grow from.
func EmptyBBox() BBox {
	inf := math.Inf(1)
	return BBox{MinX: inf, MinY: inf, MaxX: -inf, MaxY: -inf}
}

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	b.MinX = math.Min(b.MinX, p.X)
	b.MinY = math.Min(b.MinY, p.Y)
	b.MaxX = math.Max(b.MaxX, p.X)
	b.MaxY = math.Max(b.MaxY, p.Y)
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	return BBox{
		MinX: math.Min(b.MinX, o.MinX),
		MinY: math.Min(b.MinY, o.MinY),
		MaxX: math.Max(b.MaxX, o.MaxX),
		MaxY: math.Max(b.MaxY, o.MaxY),
	}
}

// Intersects reports whether the two boxes overlap (closed intervals).
func (b BBox) Intersects(o BBox) bool {
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX && b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// Empty reports whether the box contains no points.
func (b BBox) Empty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// Width returns the horizontal extent of the box, or 0 when empty.
func (b BBox) Width() float64 {
	if b.Empty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the vertical extent of the box, or 0 when empty.
func (b BBox) Height() float64 {
	if b.Empty() {
		return 0
	}
	return b.MaxY - b.MinY
}
