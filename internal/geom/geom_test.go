package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare(x, y float64) Polygon {
	return Polygon{Outer: Ring{
		{x, y}, {x + 1, y}, {x + 1, y + 1}, {x, y + 1},
	}}
}

func TestRingSignedArea(t *testing.T) {
	tests := []struct {
		name string
		ring Ring
		want float64
	}{
		{"ccw unit square", Ring{{0, 0}, {1, 0}, {1, 1}, {0, 1}}, 1},
		{"cw unit square", Ring{{0, 0}, {0, 1}, {1, 1}, {1, 0}}, -1},
		{"triangle", Ring{{0, 0}, {4, 0}, {0, 3}}, 6},
		{"degenerate 2 points", Ring{{0, 0}, {1, 1}}, 0},
		{"empty", Ring{}, 0},
		{"collinear", Ring{{0, 0}, {1, 0}, {2, 0}}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.ring.SignedArea(); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("SignedArea() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestRingArea(t *testing.T) {
	cw := Ring{{0, 0}, {0, 2}, {2, 2}, {2, 0}}
	if got := cw.Area(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Area() = %v, want 4", got)
	}
}

func TestRingCentroid(t *testing.T) {
	sq := Ring{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	c := sq.Centroid()
	if math.Abs(c.X-1) > 1e-12 || math.Abs(c.Y-1) > 1e-12 {
		t.Errorf("Centroid() = %v, want (1,1)", c)
	}
}

func TestRingCentroidDegenerate(t *testing.T) {
	line := Ring{{0, 0}, {2, 0}, {4, 0}}
	c := line.Centroid()
	if math.Abs(c.X-2) > 1e-12 || math.Abs(c.Y) > 1e-12 {
		t.Errorf("degenerate Centroid() = %v, want (2,0)", c)
	}
	if got := (Ring{}).Centroid(); got != (Point{}) {
		t.Errorf("empty Centroid() = %v, want origin", got)
	}
}

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
}

func TestPolygonContains(t *testing.T) {
	pg := unitSquare(0, 0)
	tests := []struct {
		pt   Point
		want bool
	}{
		{Point{0.5, 0.5}, true},
		{Point{1.5, 0.5}, false},
		{Point{-0.1, 0.5}, false},
		{Point{0.5, 2}, false},
		{Point{0.99, 0.99}, true},
	}
	for _, tc := range tests {
		if got := pg.Contains(tc.pt); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.pt, got, tc.want)
		}
	}
}

func TestPolygonValidate(t *testing.T) {
	tests := []struct {
		name    string
		pg      Polygon
		wantErr bool
	}{
		{"valid", unitSquare(0, 0), false},
		{"two points", Polygon{Outer: Ring{{0, 0}, {1, 1}}}, true},
		{"repeated vertex", Polygon{Outer: Ring{{0, 0}, {0, 0}, {1, 1}}}, true},
		{"zero area", Polygon{Outer: Ring{{0, 0}, {1, 0}, {2, 0}}}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.pg.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestBBox(t *testing.T) {
	b := EmptyBBox()
	if !b.Empty() {
		t.Fatal("EmptyBBox should be empty")
	}
	if b.Width() != 0 || b.Height() != 0 {
		t.Errorf("empty box dims = %v x %v, want 0 x 0", b.Width(), b.Height())
	}
	b.Extend(Point{1, 2})
	b.Extend(Point{-1, 5})
	if b.Empty() {
		t.Fatal("box should not be empty after Extend")
	}
	if b.MinX != -1 || b.MaxX != 1 || b.MinY != 2 || b.MaxY != 5 {
		t.Errorf("box = %+v", b)
	}
	if b.Width() != 2 || b.Height() != 3 {
		t.Errorf("dims = %v x %v, want 2 x 3", b.Width(), b.Height())
	}

	other := BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	u := b.Union(other)
	if u.MinX != -1 || u.MaxX != 10 || u.MinY != 0 || u.MaxY != 10 {
		t.Errorf("Union = %+v", u)
	}
	if !b.Intersects(other) {
		t.Error("expected intersection")
	}
	far := BBox{MinX: 100, MinY: 100, MaxX: 101, MaxY: 101}
	if b.Intersects(far) {
		t.Error("unexpected intersection with far box")
	}
}

func TestPolygonBBox(t *testing.T) {
	pg := Polygon{Outer: Ring{{1, 1}, {5, 2}, {3, 7}}}
	b := pg.BBox()
	if b.MinX != 1 || b.MaxX != 5 || b.MinY != 1 || b.MaxY != 7 {
		t.Errorf("BBox = %+v", b)
	}
}

func TestRookAdjacencyGrid(t *testing.T) {
	for _, dims := range []struct{ cols, rows int }{{1, 1}, {3, 1}, {1, 4}, {3, 3}, {5, 4}} {
		polys := Lattice(LatticeOptions{Cols: dims.cols, Rows: dims.rows})
		got := Adjacency(polys, Rook)
		want := GridNeighbors(dims.cols, dims.rows, 0)
		if len(got) != len(want) {
			t.Fatalf("%dx%d: adjacency size %d, want %d", dims.cols, dims.rows, len(got), len(want))
		}
		for i := range got {
			if !equalIntSlices(got[i], want[i]) {
				t.Errorf("%dx%d: area %d neighbors = %v, want %v", dims.cols, dims.rows, i, got[i], want[i])
			}
		}
	}
}

func TestRookAdjacencyTrimmedGrid(t *testing.T) {
	polys := Lattice(LatticeOptions{Cols: 4, Rows: 3, Cells: 10})
	if len(polys) != 10 {
		t.Fatalf("got %d polygons, want 10", len(polys))
	}
	got := Adjacency(polys, Rook)
	want := GridNeighbors(4, 3, 10)
	for i := range got {
		if !equalIntSlices(got[i], want[i]) {
			t.Errorf("area %d neighbors = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQueenAdjacencyIncludesDiagonals(t *testing.T) {
	polys := Lattice(LatticeOptions{Cols: 2, Rows: 2})
	rook := Adjacency(polys, Rook)
	queen := Adjacency(polys, Queen)
	// Under rook, cell 0 has neighbors {1, 2}; queen adds diagonal 3.
	if !equalIntSlices(rook[0], []int{1, 2}) {
		t.Errorf("rook[0] = %v, want [1 2]", rook[0])
	}
	if !equalIntSlices(queen[0], []int{1, 2, 3}) {
		t.Errorf("queen[0] = %v, want [1 2 3]", queen[0])
	}
}

func TestQueenSupersetOfRook(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	polys := Lattice(LatticeOptions{Cols: 6, Rows: 5, Jitter: 0.2, Rng: rng})
	rook := Adjacency(polys, Rook)
	queen := Adjacency(polys, Queen)
	for i := range rook {
		qset := make(map[int]bool)
		for _, j := range queen[i] {
			qset[j] = true
		}
		for _, j := range rook[i] {
			if !qset[j] {
				t.Errorf("rook neighbor %d of %d missing from queen set %v", j, i, queen[i])
			}
		}
	}
}

func TestAdjacencySymmetricIrreflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	polys := Lattice(LatticeOptions{Cols: 8, Rows: 8, Jitter: 0.25, Rng: rng})
	for _, rule := range []Contiguity{Rook, Queen} {
		adj := Adjacency(polys, rule)
		for i, nbs := range adj {
			for _, j := range nbs {
				if j == i {
					t.Errorf("%v: self-loop at %d", rule, i)
				}
				if !containsInt(adj[j], i) {
					t.Errorf("%v: asymmetric edge %d->%d", rule, i, j)
				}
			}
		}
	}
}

func TestAdjacencyDefaultRuleIsRook(t *testing.T) {
	polys := Lattice(LatticeOptions{Cols: 2, Rows: 2})
	got := Adjacency(polys, Contiguity(99))
	want := Adjacency(polys, Rook)
	for i := range got {
		if !equalIntSlices(got[i], want[i]) {
			t.Fatalf("unknown rule should fall back to rook")
		}
	}
}

func TestContiguityString(t *testing.T) {
	if Rook.String() != "rook" || Queen.String() != "queen" {
		t.Error("contiguity names wrong")
	}
	if Contiguity(9).String() != "Contiguity(9)" {
		t.Errorf("unknown contiguity String() = %q", Contiguity(9).String())
	}
}

func TestSharedBorderLength(t *testing.T) {
	a := unitSquare(0, 0)
	b := unitSquare(1, 0) // shares right edge of a, length 1
	c := unitSquare(5, 5) // disjoint
	if got := SharedBorderLength(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("shared border a,b = %v, want 1", got)
	}
	if got := SharedBorderLength(a, c); got != 0 {
		t.Errorf("shared border a,c = %v, want 0", got)
	}
	if got := SharedBorderLength(a, a); got <= 3.99 {
		t.Errorf("self shared border = %v, want full perimeter 4", got)
	}
}

func TestLatticeJitterPreservesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	polys := Lattice(LatticeOptions{Cols: 7, Rows: 6, Jitter: 0.3, Rng: rng})
	got := Adjacency(polys, Rook)
	want := GridNeighbors(7, 6, 0)
	for i := range got {
		if !equalIntSlices(got[i], want[i]) {
			t.Errorf("jittered area %d neighbors = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLatticeCellSizeAndOrigin(t *testing.T) {
	polys := Lattice(LatticeOptions{Cols: 2, Rows: 1, CellSize: 3, OriginX: 10, OriginY: 20})
	if len(polys) != 2 {
		t.Fatalf("got %d polys", len(polys))
	}
	if a := polys[0].Area(); math.Abs(a-9) > 1e-9 {
		t.Errorf("cell area = %v, want 9", a)
	}
	b := polys[0].BBox()
	if b.MinX != 10 || b.MinY != 20 {
		t.Errorf("origin not applied: %+v", b)
	}
}

func TestLatticeDegenerateOptions(t *testing.T) {
	if Lattice(LatticeOptions{Cols: 0, Rows: 5}) != nil {
		t.Error("zero cols should yield nil")
	}
	if Lattice(LatticeOptions{Cols: 5, Rows: -1}) != nil {
		t.Error("negative rows should yield nil")
	}
}

func TestLatticePolygonsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	polys := Lattice(LatticeOptions{Cols: 10, Rows: 10, Jitter: 0.3, Rng: rng})
	for i, pg := range polys {
		if err := pg.Validate(); err != nil {
			t.Errorf("polygon %d invalid: %v", i, err)
		}
		if pg.Area() <= 0 {
			t.Errorf("polygon %d has non-positive area", i)
		}
	}
}

// Property: the sum of signed areas of lattice cells equals the area of the
// whole lattice rectangle, for any jitter (the tiling is exact).
func TestLatticeTilesExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols, rows := 3+rng.Intn(5), 3+rng.Intn(5)
		polys := Lattice(LatticeOptions{Cols: cols, Rows: rows, Jitter: 0.3, Rng: rng})
		var sum float64
		for _, pg := range polys {
			sum += pg.Area()
		}
		want := float64(cols * rows)
		return math.Abs(sum-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: centroid of each lattice cell lies inside the cell.
func TestCentroidInsideCell(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		polys := Lattice(LatticeOptions{Cols: 5, Rows: 5, Jitter: 0.25, Rng: rng})
		for _, pg := range polys {
			if !pg.Contains(pg.Centroid()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
