package geom

import "math/rand"

// LatticeOptions configures synthetic polygon lattice generation.
type LatticeOptions struct {
	// Cols and Rows give the lattice dimensions; Cols*Rows cells are
	// produced (possibly trimmed by Cells).
	Cols, Rows int
	// Cells, when positive, trims the lattice to the first Cells cells in
	// row-major order so that arbitrary area counts are possible.
	Cells int
	// CellSize is the edge length of an unperturbed cell. Zero means 1.
	CellSize float64
	// Jitter perturbs interior lattice vertices by up to Jitter*CellSize
	// in each axis, turning the square grid into an irregular mesh like
	// real tract boundaries. Shared borders stay shared because the
	// perturbation is applied to the lattice vertices, not per polygon.
	Jitter float64
	// Rng drives the jitter. Nil means no jitter regardless of Jitter.
	Rng *rand.Rand
	// OriginX and OriginY translate the whole lattice.
	OriginX, OriginY float64
}

// Lattice builds a grid of quadrilateral polygons with optionally jittered
// interior vertices. Cell (c, r) is polygon index r*Cols + c. The polygons
// tile the plane exactly: neighbors share full edges, so rook adjacency of
// the result equals 4-neighborhood of the grid.
func Lattice(opt LatticeOptions) []Polygon {
	cols, rows := opt.Cols, opt.Rows
	if cols <= 0 || rows <= 0 {
		return nil
	}
	size := opt.CellSize
	if size <= 0 {
		size = 1
	}
	// Vertex grid (cols+1) x (rows+1), jittered in the interior only so
	// the overall tile stays rectangular.
	vx := make([][]Point, rows+1)
	for r := 0; r <= rows; r++ {
		vx[r] = make([]Point, cols+1)
		for c := 0; c <= cols; c++ {
			p := Point{opt.OriginX + float64(c)*size, opt.OriginY + float64(r)*size}
			if opt.Rng != nil && opt.Jitter > 0 && r > 0 && r < rows && c > 0 && c < cols {
				p.X += (opt.Rng.Float64()*2 - 1) * opt.Jitter * size
				p.Y += (opt.Rng.Float64()*2 - 1) * opt.Jitter * size
			}
			vx[r][c] = p
		}
	}
	total := cols * rows
	if opt.Cells > 0 && opt.Cells < total {
		total = opt.Cells
	}
	polys := make([]Polygon, 0, total)
	for i := 0; i < total; i++ {
		c, r := i%cols, i/cols
		// Counter-clockwise ring.
		ring := Ring{vx[r][c], vx[r][c+1], vx[r+1][c+1], vx[r+1][c]}
		polys = append(polys, Polygon{Outer: ring})
	}
	return polys
}

// GridNeighbors returns the expected rook adjacency of an untrimmed
// cols x rows lattice (4-neighborhood), for cross-checking the geometric
// adjacency extraction.
func GridNeighbors(cols, rows, cells int) [][]int {
	total := cols * rows
	if cells > 0 && cells < total {
		total = cells
	}
	adj := make([][]int, total)
	for i := 0; i < total; i++ {
		c, r := i%cols, i/cols
		var nb []int
		if r > 0 {
			nb = append(nb, i-cols)
		}
		if c > 0 {
			nb = append(nb, i-1)
		}
		if c < cols-1 && i+1 < total {
			nb = append(nb, i+1)
		}
		if r < rows-1 && i+cols < total {
			nb = append(nb, i+cols)
		}
		if nb == nil {
			nb = []int{}
		}
		adj[i] = nb
	}
	return adj
}
