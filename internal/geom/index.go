package geom

import (
	"math"
	"sort"
)

// Index is a uniform-grid spatial hash over points, supporting radius and
// k-nearest-neighbor queries. It backs the KNN and distance-band contiguity
// builders, which regionalization uses when polygon borders are unavailable
// or unreliable (point data, disjoint parcels).
type Index struct {
	pts              []Point
	cellSize         float64
	cells            map[[2]int][]int
	box              BBox
	cellMin, cellMax [2]int
}

// NewIndex builds an index over the points. cellSize <= 0 picks a cell size
// so the average cell holds a handful of points.
func NewIndex(pts []Point, cellSize float64) *Index {
	box := EmptyBBox()
	for _, p := range pts {
		box.Extend(p)
	}
	maxDim := math.Max(box.Width(), box.Height())
	if cellSize <= 0 {
		if len(pts) == 0 || box.Empty() || maxDim == 0 {
			cellSize = 1
		} else {
			area := math.Max(box.Width(), 1e-9) * math.Max(box.Height(), 1e-9)
			cellSize = math.Sqrt(area/float64(len(pts))) * 2
			// Keep queries bounded: never let the whole extent span more
			// than ~1k cells per axis (degenerate clusters otherwise
			// collapse the cell size and explode the ranges scanned).
			if floor := maxDim / 1024; cellSize < floor {
				cellSize = floor
			}
			if cellSize <= 0 {
				cellSize = 1
			}
		}
	}
	idx := &Index{
		pts:      pts,
		cellSize: cellSize,
		cells:    make(map[[2]int][]int),
		box:      box,
	}
	first := true
	for i, p := range pts {
		c := idx.cellOf(p)
		idx.cells[c] = append(idx.cells[c], i)
		if first {
			idx.cellMin, idx.cellMax = c, c
			first = false
			continue
		}
		for d := 0; d < 2; d++ {
			if c[d] < idx.cellMin[d] {
				idx.cellMin[d] = c[d]
			}
			if c[d] > idx.cellMax[d] {
				idx.cellMax[d] = c[d]
			}
		}
	}
	return idx
}

func (ix *Index) cellOf(p Point) [2]int {
	return [2]int{
		int(math.Floor(p.X / ix.cellSize)),
		int(math.Floor(p.Y / ix.cellSize)),
	}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// Within returns the indices of points within radius of q (inclusive),
// excluding the point identity `exclude` (pass -1 to keep everything),
// sorted ascending.
func (ix *Index) Within(q Point, radius float64, exclude int) []int {
	if radius < 0 {
		return nil
	}
	if len(ix.pts) == 0 {
		return nil
	}
	r2 := radius * radius
	c0 := ix.cellOf(Point{q.X - radius, q.Y - radius})
	c1 := ix.cellOf(Point{q.X + radius, q.Y + radius})
	// Clamp to occupied cells so degenerate geometry cannot force a scan
	// over an unbounded range of empty cells.
	for d := 0; d < 2; d++ {
		if c0[d] < ix.cellMin[d] {
			c0[d] = ix.cellMin[d]
		}
		if c1[d] > ix.cellMax[d] {
			c1[d] = ix.cellMax[d]
		}
	}
	var out []int
	for cx := c0[0]; cx <= c1[0]; cx++ {
		for cy := c0[1]; cy <= c1[1]; cy++ {
			for _, i := range ix.cells[[2]int{cx, cy}] {
				if i == exclude {
					continue
				}
				d := ix.pts[i].Sub(q)
				if d.X*d.X+d.Y*d.Y <= r2 {
					out = append(out, i)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// Nearest returns the indices of the k points nearest to q (excluding
// `exclude`), ordered by increasing distance with index as tie-break. It
// expands the search ring until enough candidates are confirmed.
func (ix *Index) Nearest(q Point, k, exclude int) []int {
	if k <= 0 || len(ix.pts) == 0 {
		return nil
	}
	type cand struct {
		i  int
		d2 float64
	}
	// Expand radius in cell rings until we have k candidates whose
	// distance is within the searched radius (guaranteeing correctness).
	radius := ix.cellSize
	maxDim := math.Max(ix.box.Width(), ix.box.Height()) + 2*ix.cellSize
	for {
		ids := ix.Within(q, radius, exclude)
		if len(ids) >= k || radius > maxDim {
			cands := make([]cand, 0, len(ids))
			for _, i := range ids {
				d := ix.pts[i].Sub(q)
				cands = append(cands, cand{i, d.X*d.X + d.Y*d.Y})
			}
			sort.Slice(cands, func(a, b int) bool {
				if cands[a].d2 != cands[b].d2 {
					return cands[a].d2 < cands[b].d2
				}
				return cands[a].i < cands[b].i
			})
			if len(cands) > k {
				cands = cands[:k]
			}
			out := make([]int, len(cands))
			for j, c := range cands {
				out[j] = c.i
			}
			if len(out) == k || radius > maxDim {
				return out
			}
		}
		radius *= 2
	}
}

// KNNAdjacency builds a symmetric k-nearest-neighbor contiguity over the
// polygon centroids: i and j are neighbors when either is among the other's
// k nearest. This is the standard KNN spatial weight, symmetrized so the
// result is a valid undirected contiguity structure.
func KNNAdjacency(polys []Polygon, k int) [][]int {
	cents := make([]Point, len(polys))
	for i, pg := range polys {
		cents[i] = pg.Centroid()
	}
	ix := NewIndex(cents, 0)
	sets := make([]map[int]bool, len(polys))
	for i := range polys {
		for _, j := range ix.Nearest(cents[i], k, i) {
			if sets[i] == nil {
				sets[i] = make(map[int]bool)
			}
			if sets[j] == nil {
				sets[j] = make(map[int]bool)
			}
			sets[i][j] = true
			sets[j][i] = true
		}
	}
	return finishAdjacency(sets, len(polys))
}

// DistanceBandAdjacency links polygons whose centroids lie within the given
// distance of each other (the PySAL "distance band" weight).
func DistanceBandAdjacency(polys []Polygon, distance float64) [][]int {
	cents := make([]Point, len(polys))
	for i, pg := range polys {
		cents[i] = pg.Centroid()
	}
	ix := NewIndex(cents, 0)
	sets := make([]map[int]bool, len(polys))
	for i := range polys {
		for _, j := range ix.Within(cents[i], distance, i) {
			if sets[i] == nil {
				sets[i] = make(map[int]bool)
			}
			sets[i][j] = true
		}
	}
	return finishAdjacency(sets, len(polys))
}
