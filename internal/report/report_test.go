package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"emp/internal/census"
	"emp/internal/constraint"
	"emp/internal/fact"
)

func solved(t *testing.T) *Report {
	t.Helper()
	ds, err := census.Scaled("1k", 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	set := constraint.Set{
		constraint.AtLeast(constraint.Sum, census.AttrTotalPop, 25000),
		constraint.AtMost(constraint.Count, "", 40),
	}
	res, err := fact.Solve(ds, set, fact.Config{Seed: 1, SkipLocalSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	return New(res.Partition)
}

func TestReportContents(t *testing.T) {
	r := solved(t)
	if r.P != len(r.Regions) || r.P == 0 {
		t.Fatalf("p=%d rows=%d", r.P, len(r.Regions))
	}
	if len(r.ConstraintNames) != 2 {
		t.Fatalf("constraint names = %v", r.ConstraintNames)
	}
	for _, row := range r.Regions {
		if !row.Satisfied {
			t.Errorf("region %d unsatisfied in final solution", row.Index)
		}
		if row.Aggregates[0] < 25000 {
			t.Errorf("region %d SUM = %g < 25000", row.Index, row.Aggregates[0])
		}
		if row.Size <= 0 || row.Size > 40 {
			t.Errorf("region %d size %d", row.Index, row.Size)
		}
		if row.Compactness < 0 {
			t.Errorf("region %d negative compactness", row.Index)
		}
	}
	mn, md, mx := r.SizeDistribution()
	if mn > md || md > mx {
		t.Errorf("size distribution out of order: %d %d %d", mn, md, mx)
	}
}

func TestRenderAndCSV(t *testing.T) {
	r := solved(t)
	var buf bytes.Buffer
	if err := r.Render(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "solution: dataset=1k") {
		t.Errorf("render missing header:\n%s", out)
	}
	if r.P > 3 && !strings.Contains(out, "more regions") {
		t.Error("truncation note missing")
	}

	buf.Reset()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != r.P+1 {
		t.Errorf("csv rows = %d, want %d", len(records), r.P+1)
	}
	if records[0][0] != "region" || len(records[0]) != 5+len(r.ConstraintNames) {
		t.Errorf("csv header = %v", records[0])
	}
}

func TestEmptySizeDistribution(t *testing.T) {
	r := &Report{}
	mn, md, mx := r.SizeDistribution()
	if mn != 0 || md != 0 || mx != 0 {
		t.Error("empty distribution should be zeros")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf, 0); err != nil {
		t.Fatal(err)
	}
}
