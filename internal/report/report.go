// Package report summarizes regionalization solutions: per-region
// constraint aggregates, sizes, heterogeneity contributions and compactness,
// as text tables or CSV. The paper notes that "FaCT algorithm reports output
// statistics to users so they are equipped with information about the impact
// of different threshold ranges" — this package is that reporting layer.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"emp/internal/region"
	"emp/internal/tabu"
)

// RegionRow is one region's statistics.
type RegionRow struct {
	// Index is the dense region index (0-based, ordered by region id).
	Index int
	// Size is the number of member areas.
	Size int
	// Aggregates holds the value of each constraint, in constraint order.
	Aggregates []float64
	// Satisfied reports whether every constraint holds.
	Satisfied bool
	// Hetero is the region's internal heterogeneity.
	Hetero float64
	// Compactness is the centroid dispersion (0 when no polygons).
	Compactness float64
}

// Report is a full solution summary.
type Report struct {
	// Dataset and P identify the solution.
	Dataset string
	P       int
	// Unassigned is |U0|.
	Unassigned int
	// Heterogeneity is H(P).
	Heterogeneity float64
	// ConstraintNames labels the aggregate columns.
	ConstraintNames []string
	// Regions holds one row per region.
	Regions []RegionRow
}

// New builds a report from a partition.
func New(p *region.Partition) *Report {
	ev := p.Evaluator()
	names := make([]string, ev.Len())
	for i := 0; i < ev.Len(); i++ {
		names[i] = ev.At(i).String()
	}
	r := &Report{
		Dataset:         p.Dataset().Name,
		P:               p.NumRegions(),
		Unassigned:      p.UnassignedCount(),
		Heterogeneity:   p.Heterogeneity(),
		ConstraintNames: names,
	}
	var comp *tabu.Compactness
	if p.Dataset().Polygons != nil {
		comp = tabu.NewCompactness(p.Dataset().Polygons)
	}
	for idx, id := range p.RegionIDs() {
		reg := p.Region(id)
		row := RegionRow{
			Index:      idx,
			Size:       reg.Size(),
			Aggregates: make([]float64, ev.Len()),
			Satisfied:  reg.Tracker.SatisfiedAll(),
			Hetero:     reg.Hetero,
		}
		for i := 0; i < ev.Len(); i++ {
			row.Aggregates[i] = reg.Tracker.Value(i)
		}
		if comp != nil {
			row.Compactness = compactnessOf(comp, reg.Members)
		}
		r.Regions = append(r.Regions, row)
	}
	return r
}

// compactnessOf computes the centroid dispersion Σ|x−μ|² of one region.
func compactnessOf(c *tabu.Compactness, members []int) float64 {
	var sx, sy, sq float64
	for _, a := range members {
		p := c.Centroids[a]
		sx += p.X
		sy += p.Y
		sq += p.X*p.X + p.Y*p.Y
	}
	n := float64(len(members))
	if n == 0 {
		return 0
	}
	return sq - (sx*sx+sy*sy)/n
}

// SizeDistribution returns region size quantile labels for the summary.
func (r *Report) SizeDistribution() (min, median, max int) {
	if len(r.Regions) == 0 {
		return 0, 0, 0
	}
	sizes := make([]int, len(r.Regions))
	for i, row := range r.Regions {
		sizes[i] = row.Size
	}
	sort.Ints(sizes)
	return sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]
}

// Render writes the report as aligned text. maxRows truncates the region
// table (0 = all).
func (r *Report) Render(w io.Writer, maxRows int) error {
	fmt.Fprintf(w, "solution: dataset=%s p=%d unassigned=%d H=%.6g\n",
		r.Dataset, r.P, r.Unassigned, r.Heterogeneity)
	mn, md, mx := r.SizeDistribution()
	fmt.Fprintf(w, "region sizes: min=%d median=%d max=%d\n", mn, md, mx)
	header := append([]string{"region", "size", "ok", "hetero", "compact"}, r.ConstraintNames...)
	fmt.Fprintln(w, strings.Join(header, "  "))
	rows := r.Regions
	truncated := 0
	if maxRows > 0 && len(rows) > maxRows {
		truncated = len(rows) - maxRows
		rows = rows[:maxRows]
	}
	for _, row := range rows {
		cells := []string{
			strconv.Itoa(row.Index),
			strconv.Itoa(row.Size),
			map[bool]string{true: "yes", false: "NO"}[row.Satisfied],
			fmt.Sprintf("%.4g", row.Hetero),
			fmt.Sprintf("%.4g", row.Compactness),
		}
		for _, v := range row.Aggregates {
			cells = append(cells, fmt.Sprintf("%.4g", v))
		}
		fmt.Fprintln(w, strings.Join(cells, "  "))
	}
	if truncated > 0 {
		fmt.Fprintf(w, "... (%d more regions)\n", truncated)
	}
	return nil
}

// WriteCSV emits the region table as CSV.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"region", "size", "satisfied", "hetero", "compactness"}, r.ConstraintNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Regions {
		cells := []string{
			strconv.Itoa(row.Index),
			strconv.Itoa(row.Size),
			strconv.FormatBool(row.Satisfied),
			strconv.FormatFloat(row.Hetero, 'g', -1, 64),
			strconv.FormatFloat(row.Compactness, 'g', -1, 64),
		}
		for _, v := range row.Aggregates {
			cells = append(cells, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
