GO ?= go

.PHONY: build test race vet fmt-check staticcheck check chaos recovery bench bench-smoke bench-tabu bench-obs bench-serve bench-shard bench-cut bench-fault bench-prep bench-jobs bench-recovery

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fmt-check fails if any file needs gofmt (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# staticcheck runs honnef.co/go/tools when the binary is on PATH and is a
# no-op otherwise, so `make check` works on machines that cannot install
# tools; CI installs it explicitly and therefore always gets the real run.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

# check is the CI gate: static analysis plus the full suite under the race
# detector (the parallel multi-start in internal/fact shares a mutex-guarded
# best-candidate slot that plain `go test` never exercises for races).
check: vet staticcheck race

# chaos runs the fault-injection suite under the race detector: seeded,
# deterministic failure scenarios (deadline mid-search, shard panics,
# transient retries, injected cancellation) against internal/fact, the fault
# registry itself, and the server robustness surface (/readyz drain,
# timeout_ms clamping, degraded-response caching). See docs/ROBUSTNESS.md.
chaos:
	$(GO) test -race -run 'TestChaos|TestConstructionBudget|TestReadiness|TestSolveTimeout|TestSolveDeadline504|TestSolveDegraded|TestSolveDatasetGenerationRetry|TestSchedulerSaturated' \
		./internal/fact/ ./internal/server/ ./internal/solvecache/
	$(GO) test -race ./internal/fault/ ./internal/durable/

# recovery runs the durable-state suite under the race detector: the journal /
# checkpoint / snapshot unit tests plus the server recovery scenarios — torn
# journal tails, corrupt snapshots, mismatched-fingerprint checkpoints,
# snapshot-write failures — and the kill -9 harness, which re-execs the test
# binary as a real listening server, SIGKILLs it mid-search after the first
# checkpoint lands, and asserts the restarted server resumes the job from that
# checkpoint never worse than the incumbent it carried. See docs/ROBUSTNESS.md.
recovery:
	$(GO) test -race -run 'TestRecovery|TestReadyzRecovering' ./internal/server/
	$(GO) test -race ./internal/durable/

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-smoke runs the telemetry-overhead benchmark once: a fast CI-grade
# check that the tabu hot path still builds and runs in all three telemetry
# states (absent / disabled / enabled). -benchmem keeps the per-run
# allocation profile visible so regressions show up in the CI log. Overhead
# numbers need bench-obs.
bench-smoke:
	$(GO) test -run xxx -bench BenchmarkTabuTelemetry -benchtime 1x -benchmem ./internal/tabu/

# bench-tabu regenerates BENCH_tabu.json (local-search before/after).
bench-tabu:
	$(GO) run ./cmd/empbench -benchtabu -scale 1

# bench-obs regenerates BENCH_obs.json (tabu throughput with telemetry
# off / on / full flight-recorder+tracing) and captures the full leg's span
# events as TRACE_obs.jsonl.
bench-obs:
	$(GO) run ./cmd/empbench -benchobs -scale 1

# bench-serve regenerates BENCH_serve.json (cold / hot-cache / deduped
# POST /solve throughput through the serving subsystem). The default scale
# keeps it CI-grade; see docs/SERVING.md for what the legs mean.
bench-serve:
	$(GO) run ./cmd/empbench -benchserve

# bench-shard regenerates BENCH_shard.json (legacy whole-dataset solve vs
# the component-sharded pipeline, plus the 1-worker/N-worker determinism
# check). Speedup tracks GOMAXPROCS; see docs/SHARDING.md.
bench-shard:
	$(GO) run ./cmd/empbench -benchshard

# bench-cut regenerates BENCH_cut.json (whole-graph solve vs the cut-sharded
# solve at 1/2/4 workers on the paper-sized single-component 50k1 dataset,
# with the p / heterogeneity gap and the cross-worker determinism check).
# Speedup beyond the serial decomposition needs cores; see docs/SHARDING.md.
bench-cut:
	$(GO) run ./cmd/empbench -benchcut -scale 1

# bench-fault regenerates BENCH_fault.json (graceful degradation under
# shrinking deadlines, shard-panic survival, transient-failure retries). The
# default scale keeps it CI-grade; see docs/ROBUSTNESS.md for the legs.
bench-fault:
	$(GO) run ./cmd/empbench -benchfault

# bench-jobs regenerates BENCH_jobs.json (async job API: sync vs async wall
# time, submit latency, time-to-first-incumbent vs convergence from the event
# stream, and the warm-start resubmit win in tabu moves). The default scale
# keeps it CI-grade; see docs/JOBS.md for what the legs mean.
bench-jobs:
	$(GO) run ./cmd/empbench -benchjobs

# bench-recovery regenerates BENCH_recovery.json (durable state: restored-boot
# snapshot hit rate and serve speedup, warm seeds surviving a restart, and the
# checkpoint-resume leg — tabu moves saved versus a cold re-solve with the
# never-worse incumbent check). The default scale keeps it CI-grade; see
# docs/ROBUSTNESS.md for what the legs mean.
bench-recovery:
	$(GO) run ./cmd/empbench -benchrecovery

# bench-prep regenerates BENCH_prep.json (prepared-dataset artifact: solve
# latency prepared vs unprepared, cold-request throughput, result identity,
# allocations per tabu move). The default scale keeps it CI-grade; see
# docs/PERFORMANCE.md for what the legs mean.
bench-prep:
	$(GO) run ./cmd/empbench -benchprep
