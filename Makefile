GO ?= go

.PHONY: build test race vet check bench bench-tabu

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: static analysis plus the full suite under the race
# detector (the parallel multi-start in internal/fact shares a mutex-guarded
# best-candidate slot that plain `go test` never exercises for races).
check: vet race

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-tabu regenerates BENCH_tabu.json (local-search before/after).
bench-tabu:
	$(GO) run ./cmd/empbench -benchtabu -scale 1
