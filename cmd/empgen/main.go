// Command empgen generates synthetic census datasets and writes them to
// JSON files consumable by empquery and the emp library.
//
// Usage:
//
//	empgen -name 2k -out 2k.json            # one of the paper's datasets
//	empgen -areas 5000 -states 4 -components 2 -seed 7 -out custom.json
//	empgen -name 50k -scale 0.1 -out small50k.json
//	empgen -list                             # show the named datasets
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"emp/internal/census"
	"emp/internal/data"
	"emp/internal/shapefile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("empgen: ")
	var (
		name       = flag.String("name", "", "named dataset (1k..50k); overrides -areas")
		areas      = flag.Int("areas", 0, "number of areas for a custom dataset")
		states     = flag.Int("states", 1, "number of state blocks")
		components = flag.Int("components", 1, "number of connected components")
		seed       = flag.Int64("seed", 1, "random seed")
		scale      = flag.Float64("scale", 1, "scale factor for named datasets (0,1]")
		out        = flag.String("out", "", "output JSON path (required unless -list or -shp)")
		shpBase    = flag.String("shp", "", "also write <base>.shp/<base>.dbf ESRI shapefiles")
		list       = flag.Bool("list", false, "list the named datasets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("name  areas  states  components")
		for _, n := range census.SizeNames() {
			sz := census.Sizes[n]
			fmt.Printf("%-5s %6d %7d %11d\n", n, sz.Areas, sz.States, sz.Components)
		}
		return
	}
	if *out == "" && *shpBase == "" {
		log.Fatal("-out or -shp is required (or use -list)")
	}

	var ds *data.Dataset
	var err error
	switch {
	case *name != "" && *scale < 1:
		ds, err = census.Scaled(*name, *scale, *seed)
	case *name != "":
		ds, err = census.NamedSeeded(*name, *seed)
	case *areas > 0:
		ds, err = census.Generate(census.Options{
			Name:       fmt.Sprintf("custom-%d", *areas),
			Areas:      *areas,
			States:     *states,
			Components: *components,
			Seed:       *seed,
			Jitter:     -1,
		})
	default:
		log.Fatal("either -name or -areas is required")
	}
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := ds.SaveJSON(*out); err != nil {
			log.Fatal(err)
		}
		fi, err := os.Stat(*out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d areas, %d components, %d attributes, %d bytes\n",
			*out, ds.N(), ds.Components(), len(ds.AttrNames), fi.Size())
	}
	if *shpBase != "" {
		if err := shapefile.SaveDataset(ds, *shpBase); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s.shp and %s.dbf\n", *shpBase, *shpBase)
	}
}
