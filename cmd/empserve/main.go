// Command empserve hosts the EMP solver as a JSON-over-HTTP service.
//
// Usage:
//
//	empserve -addr :8080 [-debug-addr :8081] [-max-body 67108864] [-quiet]
//	         [-workers N] [-queue-depth N] [-queue-wait 10s]
//	         [-max-timeout 5m] [-drain-grace 15s]
//	         [-dataset-cache-mb 256] [-result-cache-mb 64]
//	         [-flight-recorder-mb 8] [-flight-recorder-traces 64]
//	         [-job-ttl 15m] [-job-results-mb 64] [-max-jobs 64]
//	         [-state-dir /var/lib/empserve] [-snapshot-interval 1m]
//	         [-checkpoint-interval 2s]
//
// Solves run on a bounded worker pool behind a FIFO queue; when the queue
// is full or a queued solve exceeds -queue-wait the request is shed with
// 429 and a Retry-After hint. Generated datasets and finished results are
// cached (see docs/SERVING.md); identical concurrent requests share one
// solve execution. Every solve runs under a deadline: the request's
// timeout_ms clamped to -max-timeout (docs/ROBUSTNESS.md).
//
// Endpoints (the canonical surface lives under the /v1 prefix; the bare
// spellings of the pre-versioning routes remain mounted as DEPRECATED
// aliases — same handlers, caches and metrics, but alias responses carry
// `Deprecation: true` and a successor-version Link header and are counted in
// emp_deprecated_requests_total{path}. All errors on every route arrive as
// one JSON envelope {"error":{"code","message",...}} — see docs/SERVING.md):
//
//	GET  /v1/healthz   liveness probe (200 while the process serves HTTP)
//	GET  /v1/readyz    readiness probe (503 while draining or queue-saturated;
//	                   the draining body reports still-active async jobs)
//	GET  /v1/datasets  list the named synthetic datasets
//	GET  /v1/metrics   Prometheus text metrics (solver + HTTP + histograms)
//	GET  /v1/debug/solves       in-flight solves (trace id, phase, p, H)
//	GET  /v1/debug/trace/{id}   span tree + convergence curve of a solve
//	GET  /v1/debug/cache        cache + flight-recorder + job-store occupancy
//
// Async jobs (see docs/JOBS.md; /v1-only — the surface postdates versioning):
//
//	POST   /v1/jobs              submit a solve (same body as /v1/solve);
//	                             202 + job id, Location header, status body
//	GET    /v1/jobs              list tracked jobs
//	GET    /v1/jobs/{id}         status: state, live incumbent p/H, result
//	GET    /v1/jobs/{id}/events  stream incumbent improvements as SSE
//	                             (Accept: text/event-stream) or NDJSON;
//	                             ?since=N resumes from sequence N
//	DELETE /v1/jobs/{id}         cancel (queued or running)
//
// Submitting an identical request while its job is active attaches to the
// existing job; a finished job on the same dataset seeds the next job's
// construction (warm start). Finished jobs stay fetchable for -job-ttl with
// results retained under a -job-results-mb byte budget; at most -max-jobs
// are queued or running at once (further submits get 429).
//
// Every request is one trace: an incoming W3C traceparent header is honored
// and the request span's identity is echoed back, so a client can fetch
// /v1/debug/trace/{trace_id} (or run `empquery trace <id>`) for the solve it
// just issued. Recent solves are retained in a byte-budgeted flight
// recorder sized by -flight-recorder-mb / -flight-recorder-traces.
//
//	POST /solve     run an EMP query; body:
//	                {"named":"2k","scale":0.25,
//	                 "constraints":"MIN(POP16UP) <= 3000; SUM(TOTALPOP) >= 20k",
//	                 "timeout_ms":60000,
//	                 "options":{"seed":1,"local_search":"tabu"}}
//	                or with an inline {"dataset":{...}} document in the
//	                schema produced by empgen.
//
// Datasets with several connected components are solved component-by-
// component on a process-wide worker pool (docs/SHARDING.md); the
// "options" object accepts "shard_off" and "shard_workers" to steer it.
// Large single-component datasets can opt into cut-based sharding with
// "cut_shards" (>= 2 slices the graph along low-connectivity cuts, solves
// the parts concurrently and repairs the stitch seams; result-affecting,
// so it splits the cache fingerprint) and "cut_workers" (pool size,
// result-neutral).
//
// With -state-dir set, the server keeps crash-safe state there (see
// docs/ROBUSTNESS.md): an append-only job journal re-admits queued/running
// jobs after a crash (even kill -9) under their original ids, running jobs
// checkpoint their incumbent every -checkpoint-interval so resumed solves
// warm-start instead of restarting, and the result cache + warm-seed index
// snapshot every -snapshot-interval and on shutdown. /readyz answers 503
// {"status":"recovering"} while boot recovery runs. Torn or corrupt state
// files are truncated/skipped and counted in
// emp_durable_corrupt_records_total — they never fail boot. The flags are
// validated at startup (writable dir, positive intervals; exit 2 otherwise).
//
// With -debug-addr set, a second listener serves net/http/pprof under
// /debug/pprof/ and the expvar JSON (including an "emp" metrics snapshot)
// under /debug/vars. Keep it on a loopback or otherwise private address.
//
// The server shuts down gracefully on SIGINT/SIGTERM: /readyz flips to 503
// immediately so load balancers drain the instance (new job submits are
// refused the same moment), then after -drain-grace in-flight requests AND
// in-flight async jobs get up to 15 seconds to finish before the listener is
// torn down. Nonsensical flag values (negative -workers, -queue-depth below
// -1, non-positive -queue-wait, -max-body, -max-timeout, -job-ttl,
// -job-results-mb or negative -max-jobs) are rejected at startup with exit
// status 2.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emp/internal/jobs"
	"emp/internal/obs"
	"emp/internal/obswire"
	"emp/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("empserve: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		debugAddr  = flag.String("debug-addr", "", "optional debug listen address for pprof + expvar (e.g. 127.0.0.1:8081)")
		maxBody    = flag.Int64("max-body", server.DefaultMaxBodyBytes, "POST /solve body size limit in bytes")
		quiet      = flag.Bool("quiet", false, "disable the per-request access log")
		workers    = flag.Int("workers", 0, "max concurrently executing solves (0 = GOMAXPROCS)")
		queueDep   = flag.Int("queue-depth", 0, "solves allowed to wait for a worker (0 = 4x workers, -1 = no queue)")
		queueWait  = flag.Duration("queue-wait", server.DefaultQueueWait, "max time a solve may wait queued before a 429")
		maxTimeout = flag.Duration("max-timeout", server.DefaultMaxSolveTimeout, "per-solve deadline ceiling; request timeout_ms is clamped to it")
		drainGrace = flag.Duration("drain-grace", 15*time.Second, "pause between flipping /readyz to 503 and closing the listener, so load balancers observe the drain")
		dsCacheMB  = flag.Int64("dataset-cache-mb", server.DefaultDatasetCacheBytes>>20, "dataset artifact cache budget in MiB (negative disables)")
		resCacheMB = flag.Int64("result-cache-mb", server.DefaultResultCacheBytes>>20, "solve result cache budget in MiB (negative disables)")
		flightMB   = flag.Int64("flight-recorder-mb", server.DefaultFlightRecorderBytes>>20, "flight-recorder trace retention budget in MiB")
		flightN    = flag.Int("flight-recorder-traces", server.DefaultFlightRecorderTraces, "finished traces retained for /v1/debug/trace")
		jobTTL     = flag.Duration("job-ttl", jobs.DefaultTTL, "how long finished async jobs stay fetchable on /v1/jobs/{id}")
		jobResMB   = flag.Int64("job-results-mb", jobs.DefaultRetainBytes>>20, "byte budget for results retained across finished async jobs, in MiB")
		maxJobs    = flag.Int("max-jobs", jobs.DefaultMaxActive, "max queued+running async jobs; submits past it get 429 (0 = default)")
		stateDir   = flag.String("state-dir", "", "directory for crash-safe state (job journal, solve checkpoints, cache snapshot); empty disables persistence")
		snapEvery  = flag.Duration("snapshot-interval", server.DefaultSnapshotInterval, "how often the result-cache/warm-seed snapshot is written (requires -state-dir)")
		ckptEvery  = flag.Duration("checkpoint-interval", server.DefaultCheckpointInterval, "min spacing between incumbent checkpoints of a running job (requires -state-dir)")
	)
	flag.Parse()
	if err := validateFlags(*workers, *queueDep, *queueWait, *maxBody, *maxTimeout, *drainGrace); err != nil {
		log.Print(err)
		flag.Usage()
		os.Exit(2)
	}
	if err := validateJobFlags(*jobTTL, *jobResMB, *maxJobs); err != nil {
		log.Print(err)
		flag.Usage()
		os.Exit(2)
	}
	if err := validateDurableFlags(*stateDir, *snapEvery, *ckptEvery); err != nil {
		log.Print(err)
		flag.Usage()
		os.Exit(2)
	}

	// Wire the solver packages into the process-wide registry so /metrics
	// reflects every solve served by this process.
	reg := obs.Default()
	reg.SetEnabled(true)
	obswire.Enable(reg)
	expvar.Publish("emp", expvar.Func(func() any { return reg.Snapshot() }))

	mb := func(v int64) int64 {
		if v < 0 {
			return -1 // disable the cache
		}
		return v << 20
	}
	cfg := server.Config{
		Registry:          reg,
		MaxBodyBytes:      *maxBody,
		Workers:           *workers,
		QueueDepth:        *queueDep,
		QueueWait:         *queueWait,
		MaxSolveTimeout:   *maxTimeout,
		DatasetCacheBytes: mb(*dsCacheMB),
		ResultCacheBytes:  mb(*resCacheMB),

		FlightRecorderBytes:  *flightMB << 20,
		FlightRecorderTraces: *flightN,

		JobTTL:         *jobTTL,
		JobRetainBytes: *jobResMB << 20,
		MaxActiveJobs:  *maxJobs,

		StateDir:           *stateDir,
		SnapshotInterval:   *snapEvery,
		CheckpointInterval: *ckptEvery,
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	svc := server.New(cfg)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("debug listening on %s (pprof + expvar)", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("debug server: %v", err)
			}
		}()
		defer dbg.Close()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		// Flip readiness first so load balancers stop routing here, keep
		// serving in-flight (and newly arriving) requests through the drain
		// grace, then tear the listener down.
		svc.SetDraining(true)
		log.Printf("draining: /readyz now 503, waiting %s before closing the listener", *drainGrace)
		select {
		case <-time.After(*drainGrace):
		case err := <-errc:
			if err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}
		log.Printf("shutting down (in-flight requests and jobs get 15s)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		// Async jobs outlive their submit requests, so http.Server.Shutdown
		// alone would not wait for them: drain the job runners explicitly
		// under the same budget before tearing the listener down.
		if n := svc.InflightJobs(); n > 0 {
			log.Printf("waiting for %d in-flight async job(s)", n)
			if !svc.DrainJobs(shutdownCtx) {
				log.Printf("shutdown budget elapsed with %d job(s) still running", svc.InflightJobs())
			}
		}
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		// Final durable snapshot + journal close, after the drain so the
		// snapshot carries everything the drained jobs produced.
		if err := svc.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}
}

// validateFlags rejects nonsensical serving configurations at startup, before
// any listener binds: a misconfigured instance exiting with status 2 is
// diagnosable, the same instance silently "defaulting" mid-traffic is not.
func validateFlags(workers, queueDep int, queueWait time.Duration, maxBody int64, maxTimeout, drainGrace time.Duration) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", workers)
	}
	if queueDep < -1 {
		return fmt.Errorf("-queue-depth must be >= -1 (-1 = no queue, 0 = 4x workers), got %d", queueDep)
	}
	if queueWait <= 0 {
		return fmt.Errorf("-queue-wait must be positive, got %v", queueWait)
	}
	if maxBody <= 0 {
		return fmt.Errorf("-max-body must be positive, got %d", maxBody)
	}
	if maxTimeout <= 0 {
		return fmt.Errorf("-max-timeout must be positive, got %v", maxTimeout)
	}
	if drainGrace < 0 {
		return fmt.Errorf("-drain-grace must be >= 0, got %v", drainGrace)
	}
	return nil
}

// validateJobFlags applies the same fail-at-startup policy to the async job
// store's sizing flags.
func validateJobFlags(ttl time.Duration, resMB int64, maxJobs int) error {
	if ttl <= 0 {
		return fmt.Errorf("-job-ttl must be positive, got %v", ttl)
	}
	if resMB <= 0 {
		return fmt.Errorf("-job-results-mb must be positive, got %d", resMB)
	}
	if maxJobs < 0 {
		return fmt.Errorf("-max-jobs must be >= 0 (0 = default), got %d", maxJobs)
	}
	return nil
}

// validateDurableFlags vets the crash-safety configuration before the
// listener binds. A state dir that cannot actually be written to would
// silently disable persistence at the first journal append — probe it with a
// real file instead, so the operator finds out at startup with exit 2.
func validateDurableFlags(stateDir string, snapInterval, ckptInterval time.Duration) error {
	if stateDir == "" {
		return nil // persistence off; intervals are irrelevant
	}
	if snapInterval <= 0 {
		return fmt.Errorf("-snapshot-interval must be positive, got %v", snapInterval)
	}
	if ckptInterval <= 0 {
		return fmt.Errorf("-checkpoint-interval must be positive, got %v", ckptInterval)
	}
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return fmt.Errorf("-state-dir %q is not usable: %v", stateDir, err)
	}
	probe, err := os.CreateTemp(stateDir, ".empserve-probe-*")
	if err != nil {
		return fmt.Errorf("-state-dir %q is not writable: %v", stateDir, err)
	}
	name := probe.Name()
	probe.Close()
	os.Remove(name)
	return nil
}

// debugMux serves pprof and expvar on the opt-in debug listener. The routes
// are registered on a private mux (not http.DefaultServeMux) so nothing
// leaks onto the public API listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
