// Command empserve hosts the EMP solver as a JSON-over-HTTP service.
//
// Usage:
//
//	empserve -addr :8080
//
// Endpoints:
//
//	GET  /healthz   liveness probe
//	GET  /datasets  list the named synthetic datasets
//	POST /solve     run an EMP query; body:
//	                {"named":"2k","scale":0.25,
//	                 "constraints":"MIN(POP16UP) <= 3000; SUM(TOTALPOP) >= 20k",
//	                 "options":{"seed":1,"local_search":"tabu"}}
//	                or with an inline {"dataset":{...}} document in the
//	                schema produced by empgen.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"emp/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("empserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
