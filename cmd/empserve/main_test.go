package main

import (
	"testing"
	"time"

	"emp/internal/jobs"
	"emp/internal/server"
)

// TestValidateFlags pins the startup contract: nonsensical serving flags are
// rejected (main exits with status 2) instead of being silently "fixed" into
// defaults mid-traffic; every sane configuration passes.
func TestValidateFlags(t *testing.T) {
	ok := func(workers, queueDep int, queueWait time.Duration, maxBody int64, maxTimeout, drainGrace time.Duration) error {
		return validateFlags(workers, queueDep, queueWait, maxBody, maxTimeout, drainGrace)
	}
	valid := []struct {
		name string
		err  error
	}{
		{"defaults", ok(0, 0, server.DefaultQueueWait, server.DefaultMaxBodyBytes, server.DefaultMaxSolveTimeout, 15*time.Second)},
		{"no queue", ok(4, -1, time.Second, 1, time.Millisecond, 0)},
	}
	for _, tc := range valid {
		if tc.err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, tc.err)
		}
	}
	invalid := []struct {
		name string
		err  error
	}{
		{"negative workers", ok(-1, 0, time.Second, 1, time.Second, 0)},
		{"queue depth below -1", ok(0, -2, time.Second, 1, time.Second, 0)},
		{"zero queue wait", ok(0, 0, 0, 1, time.Second, 0)},
		{"negative queue wait", ok(0, 0, -time.Second, 1, time.Second, 0)},
		{"zero max body", ok(0, 0, time.Second, 0, time.Second, 0)},
		{"negative max body", ok(0, 0, time.Second, -1, time.Second, 0)},
		{"zero max timeout", ok(0, 0, time.Second, 1, 0, 0)},
		{"negative max timeout", ok(0, 0, time.Second, 1, -time.Second, 0)},
		{"negative drain grace", ok(0, 0, time.Second, 1, time.Second, -time.Second)},
	}
	for _, tc := range invalid {
		if tc.err == nil {
			t.Errorf("%s: accepted, want an error (exit 2 at startup)", tc.name)
		}
	}
}

// TestValidateJobFlags pins the same contract for the async job store flags.
func TestValidateJobFlags(t *testing.T) {
	if err := validateJobFlags(jobs.DefaultTTL, jobs.DefaultRetainBytes>>20, jobs.DefaultMaxActive); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	if err := validateJobFlags(time.Minute, 1, 0); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
	for name, err := range map[string]error{
		"zero ttl":            validateJobFlags(0, 64, 64),
		"negative ttl":        validateJobFlags(-time.Second, 64, 64),
		"zero results budget": validateJobFlags(time.Minute, 0, 64),
		"negative max jobs":   validateJobFlags(time.Minute, 64, -1),
	} {
		if err == nil {
			t.Errorf("%s: accepted, want an error (exit 2 at startup)", name)
		}
	}
}
