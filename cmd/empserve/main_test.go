package main

import (
	"testing"
	"time"

	"emp/internal/server"
)

// TestValidateFlags pins the startup contract: nonsensical serving flags are
// rejected (main exits with status 2) instead of being silently "fixed" into
// defaults mid-traffic; every sane configuration passes.
func TestValidateFlags(t *testing.T) {
	ok := func(workers, queueDep int, queueWait time.Duration, maxBody int64, maxTimeout, drainGrace time.Duration) error {
		return validateFlags(workers, queueDep, queueWait, maxBody, maxTimeout, drainGrace)
	}
	valid := []struct {
		name string
		err  error
	}{
		{"defaults", ok(0, 0, server.DefaultQueueWait, server.DefaultMaxBodyBytes, server.DefaultMaxSolveTimeout, 15*time.Second)},
		{"no queue", ok(4, -1, time.Second, 1, time.Millisecond, 0)},
	}
	for _, tc := range valid {
		if tc.err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, tc.err)
		}
	}
	invalid := []struct {
		name string
		err  error
	}{
		{"negative workers", ok(-1, 0, time.Second, 1, time.Second, 0)},
		{"queue depth below -1", ok(0, -2, time.Second, 1, time.Second, 0)},
		{"zero queue wait", ok(0, 0, 0, 1, time.Second, 0)},
		{"negative queue wait", ok(0, 0, -time.Second, 1, time.Second, 0)},
		{"zero max body", ok(0, 0, time.Second, 0, time.Second, 0)},
		{"negative max body", ok(0, 0, time.Second, -1, time.Second, 0)},
		{"zero max timeout", ok(0, 0, time.Second, 1, 0, 0)},
		{"negative max timeout", ok(0, 0, time.Second, 1, -time.Second, 0)},
		{"negative drain grace", ok(0, 0, time.Second, 1, time.Second, -time.Second)},
	}
	for _, tc := range invalid {
		if tc.err == nil {
			t.Errorf("%s: accepted, want an error (exit 2 at startup)", tc.name)
		}
	}
}
