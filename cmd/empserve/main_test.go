package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"emp/internal/jobs"
	"emp/internal/server"
)

// TestValidateFlags pins the startup contract: nonsensical serving flags are
// rejected (main exits with status 2) instead of being silently "fixed" into
// defaults mid-traffic; every sane configuration passes.
func TestValidateFlags(t *testing.T) {
	ok := func(workers, queueDep int, queueWait time.Duration, maxBody int64, maxTimeout, drainGrace time.Duration) error {
		return validateFlags(workers, queueDep, queueWait, maxBody, maxTimeout, drainGrace)
	}
	valid := []struct {
		name string
		err  error
	}{
		{"defaults", ok(0, 0, server.DefaultQueueWait, server.DefaultMaxBodyBytes, server.DefaultMaxSolveTimeout, 15*time.Second)},
		{"no queue", ok(4, -1, time.Second, 1, time.Millisecond, 0)},
	}
	for _, tc := range valid {
		if tc.err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, tc.err)
		}
	}
	invalid := []struct {
		name string
		err  error
	}{
		{"negative workers", ok(-1, 0, time.Second, 1, time.Second, 0)},
		{"queue depth below -1", ok(0, -2, time.Second, 1, time.Second, 0)},
		{"zero queue wait", ok(0, 0, 0, 1, time.Second, 0)},
		{"negative queue wait", ok(0, 0, -time.Second, 1, time.Second, 0)},
		{"zero max body", ok(0, 0, time.Second, 0, time.Second, 0)},
		{"negative max body", ok(0, 0, time.Second, -1, time.Second, 0)},
		{"zero max timeout", ok(0, 0, time.Second, 1, 0, 0)},
		{"negative max timeout", ok(0, 0, time.Second, 1, -time.Second, 0)},
		{"negative drain grace", ok(0, 0, time.Second, 1, time.Second, -time.Second)},
	}
	for _, tc := range invalid {
		if tc.err == nil {
			t.Errorf("%s: accepted, want an error (exit 2 at startup)", tc.name)
		}
	}
}

// TestValidateJobFlags pins the same contract for the async job store flags.
func TestValidateJobFlags(t *testing.T) {
	if err := validateJobFlags(jobs.DefaultTTL, jobs.DefaultRetainBytes>>20, jobs.DefaultMaxActive); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	if err := validateJobFlags(time.Minute, 1, 0); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
	for name, err := range map[string]error{
		"zero ttl":            validateJobFlags(0, 64, 64),
		"negative ttl":        validateJobFlags(-time.Second, 64, 64),
		"zero results budget": validateJobFlags(time.Minute, 0, 64),
		"negative max jobs":   validateJobFlags(time.Minute, 64, -1),
	} {
		if err == nil {
			t.Errorf("%s: accepted, want an error (exit 2 at startup)", name)
		}
	}
}

// TestValidateDurableFlags pins the startup contract for the crash-safety
// flags: without -state-dir everything passes (persistence off); with it,
// intervals must be positive and the directory must actually accept writes —
// probed with a real file, not just a stat.
func TestValidateDurableFlags(t *testing.T) {
	if err := validateDurableFlags("", 0, 0); err != nil {
		t.Errorf("no state dir: intervals must be ignored, got %v", err)
	}
	dir := t.TempDir()
	if err := validateDurableFlags(dir, server.DefaultSnapshotInterval, server.DefaultCheckpointInterval); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	// A fresh subdirectory is created on demand.
	if err := validateDurableFlags(filepath.Join(dir, "new", "state"), time.Minute, time.Second); err != nil {
		t.Errorf("fresh nested dir rejected: %v", err)
	}
	for name, err := range map[string]error{
		"zero snapshot interval":       validateDurableFlags(dir, 0, time.Second),
		"negative snapshot interval":   validateDurableFlags(dir, -time.Minute, time.Second),
		"zero checkpoint interval":     validateDurableFlags(dir, time.Minute, 0),
		"negative checkpoint interval": validateDurableFlags(dir, time.Minute, -time.Second),
	} {
		if err == nil {
			t.Errorf("%s: accepted, want an error (exit 2 at startup)", name)
		}
	}
	// An unwritable state dir must be caught before the listener binds.
	if os.Getuid() != 0 { // root ignores mode bits; the probe would succeed
		ro := filepath.Join(dir, "readonly")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if err := validateDurableFlags(ro, time.Minute, time.Second); err == nil {
			t.Error("read-only state dir accepted, want an error (exit 2 at startup)")
		}
	}
	// A state-dir path blocked by a regular file fails for everyone.
	block := filepath.Join(dir, "blocked")
	if err := os.WriteFile(block, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateDurableFlags(filepath.Join(block, "state"), time.Minute, time.Second); err == nil {
		t.Error("file-blocked state dir accepted, want an error (exit 2 at startup)")
	}
}
