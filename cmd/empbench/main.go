// Command empbench regenerates the paper's evaluation tables and figures on
// the synthetic census substrate.
//
// Usage:
//
//	empbench -list                      # show available experiment ids
//	empbench -experiment table3         # one experiment
//	empbench -experiment all -scale 0.1 # the whole evaluation, small
//	empbench -experiment fig15 -scale 1 # full-size scalability run
//
// Dataset sizes are scaled by -scale (default 0.25) so the suite completes
// in minutes on one core; the paper's absolute sizes need -scale 1 and
// correspondingly more time. Shapes (orderings, trends, crossovers) are
// preserved across scales; EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"emp/internal/experiments"
	"emp/internal/obs"
	"emp/internal/obswire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("empbench: ")
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		scale      = flag.Float64("scale", 0.25, "dataset scale (0,1]")
		seed       = flag.Int64("seed", 1, "random seed")
		iterations = flag.Int("iterations", 1, "FaCT construction iterations")
		noTabu     = flag.Bool("notabu", false, "skip the local-search phase")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		benchTabu  = flag.Bool("benchtabu", false, "run the tabu kernel benchmark and write BENCH_tabu.json")
		benchObs   = flag.Bool("benchobs", false, "run the telemetry overhead benchmark and write BENCH_obs.json")
		benchServe = flag.Bool("benchserve", false, "run the serving throughput benchmark and write BENCH_serve.json")
		benchShard = flag.Bool("benchshard", false, "run the component-sharding benchmark and write BENCH_shard.json")
		benchCut   = flag.Bool("benchcut", false, "run the cut-sharding benchmark and write BENCH_cut.json")
		benchFault = flag.Bool("benchfault", false, "run the fault-injection/degradation benchmark and write BENCH_fault.json")
		benchPrep  = flag.Bool("benchprep", false, "run the prepared-dataset artifact benchmark and write BENCH_prep.json")
		benchJobs  = flag.Bool("benchjobs", false, "run the async job API benchmark and write BENCH_jobs.json")
		benchRecov = flag.Bool("benchrecovery", false, "run the durable-state recovery benchmark and write BENCH_recovery.json")
		trace      = flag.String("trace", "", "write solver telemetry events as JSONL to this file")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		defer f.Close()
		reg := obs.Default()
		reg.SetSink(obs.NewJSONLSink(f))
		reg.SetEnabled(true)
		obswire.Enable(reg)
		defer obswire.Enable(nil)
	}
	if *benchObs {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		res, err := experiments.WriteObsBenchTraced(cfg, "BENCH_obs.json", "TRACE_obs.jsonl")
		if err != nil {
			log.Fatalf("benchobs: %v", err)
		}
		fmt.Printf("tabu improve on %s (%d areas, %d regions): telemetry off %.3fs, on %.3fs (%.2f%%), full flight-recorder path %.3fs (%.2f%%, %d curve samples)\n",
			res.Dataset, res.Areas, res.Regions, res.SecondsOff, res.SecondsOn, res.OverheadPct,
			res.SecondsFull, res.OverheadFullPct, res.CurveSamples)
		fmt.Println("wrote BENCH_obs.json and TRACE_obs.jsonl")
		return
	}
	if *benchServe {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		res, err := experiments.WriteServeBench(cfg, "BENCH_serve.json")
		if err != nil {
			log.Fatalf("benchserve: %v", err)
		}
		fmt.Printf("serve on %s scale %g: cold %.1f req/s, hot %.1f req/s (%.0fx), dedup %d concurrent in %.3fs (%d joined)\n",
			res.Dataset, res.Scale, res.ColdPerSec, res.HotPerSec, res.HotColdSpeedup,
			res.DedupConcurrent, res.DedupSeconds, res.DedupJoined)
		fmt.Println("wrote BENCH_serve.json")
		return
	}
	if *benchShard {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		res, err := experiments.WriteShardBench(cfg, "BENCH_shard.json")
		if err != nil {
			log.Fatalf("benchshard: %v", err)
		}
		fmt.Printf("shard on %s (%d areas, %d components, GOMAXPROCS %d): legacy %.3fs, sharded w=1 %.3fs, w=%d %.3fs (%.2fx), identical=%v\n",
			res.Dataset, res.Areas, res.Components, res.GoMaxProcs,
			res.LegacySeconds, res.SeqSeconds, res.ShardWorkers, res.ShardSeconds,
			res.Speedup, res.IdenticalAcrossWorkers)
		fmt.Println("wrote BENCH_shard.json")
		return
	}
	if *benchCut {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		res, err := experiments.WriteCutBench(cfg, "BENCH_cut.json")
		if err != nil {
			log.Fatalf("benchcut: %v", err)
		}
		fmt.Printf("cut on %s (%d areas, %d shards, GOMAXPROCS %d): whole %.3fs p=%d", res.Dataset, res.Areas, res.CutShards, res.GoMaxProcs, res.WholeSeconds, res.WholeP)
		for _, leg := range res.Legs {
			fmt.Printf("; w=%d %.3fs (%.2fx)", leg.Workers, leg.Seconds, leg.Speedup)
		}
		fmt.Printf("; cut p=%d, H gap %+.1f%%, identical=%v\n", res.CutP, res.HeteroGapPct, res.IdenticalAcrossWorkers)
		fmt.Println("wrote BENCH_cut.json")
		return
	}
	if *benchFault {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		res, err := experiments.WriteFaultBench(cfg, "BENCH_fault.json")
		if err != nil {
			log.Fatalf("benchfault: %v", err)
		}
		fmt.Printf("fault on %s (%d areas, %d components): baseline %.3fs p=%d H=%.1f; %d deadline points; panic leg survived=%v (p=%d, %d unassigned, %d panics recovered); retry leg ok=%v (%d retries)\n",
			res.Dataset, res.Areas, res.Components, res.BaselineSeconds, res.BaselineP, res.BaselineHetero,
			len(res.DeadlinePoints), res.PanicSurvived, res.PanicP, res.PanicUnassigned, res.PanicsRecovered,
			res.RetrySucceeded, res.RetryShardRetries)
		fmt.Println("wrote BENCH_fault.json")
		return
	}
	if *benchPrep {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		res, err := experiments.WritePrepBench(cfg, "BENCH_prep.json")
		if err != nil {
			log.Fatalf("benchprep: %v", err)
		}
		fmt.Printf("prep on %s (%d areas): solve %.3fs -> %.3fs (%.2fx, build %.3fs), cold %.1f -> %.1f solves/s, identical=%v, %.1f allocs/move\n",
			res.Dataset, res.Areas, res.UnpreparedSeconds, res.PreparedSeconds, res.SolveSpeedup,
			res.ArtifactBuildSecond, res.ColdSolvesPerSec, res.PreparedSolvesPerSec, res.Identical, res.AllocsPerMove)
		fmt.Println("wrote BENCH_prep.json")
		return
	}
	if *benchJobs {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		res, err := experiments.WriteJobsBench(cfg, "BENCH_jobs.json")
		if err != nil {
			log.Fatalf("benchjobs: %v", err)
		}
		fmt.Printf("jobs on %s scale %g: sync %.3fs, async %.3fs (submit %.1fms, first incumbent %.0fms, converged %.0fms, %d incumbents, final event matches=%v); warm resubmit %d moves vs cold %d (%.1f%% saved, warm_from=%v)\n",
			res.Dataset, res.Scale, res.SyncSeconds, res.AsyncSeconds, res.SubmitMillis,
			res.FirstIncumbentMs, res.ConvergenceMs, res.IncumbentEvents, res.FinalEventMatchesResult,
			res.WarmMoves, res.ColdMoves, res.WarmMovesSavedPct, res.WarmFromSet)
		fmt.Println("wrote BENCH_jobs.json")
		return
	}
	if *benchRecov {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		res, err := experiments.WriteRecoveryBench(cfg, "BENCH_recovery.json")
		if err != nil {
			log.Fatalf("benchrecovery: %v", err)
		}
		fmt.Printf("recovery on %s scale %g: restored boot served %d/%d from snapshot (%.3fs -> %.3fs per request, %.0fx), %d warm seed(s) survived; checkpoint resume p=%d H=%.4g after %d moves vs cold %d moves (%.1f%% saved, warm_from=%v, never_worse=%v)\n",
			res.Dataset, res.Scale, res.RestoredHits, res.SnapshotRequests,
			res.ColdSolveSeconds, res.RestoredServeSeconds, res.SnapshotSpeedup, res.RestoredWarmSeeds,
			res.ResumedP, res.ResumedH, res.ResumedMoves, res.ColdMoves,
			res.MovesSavedPct, res.WarmFromCheckpoint, res.ResumedNeverWorse)
		fmt.Println("wrote BENCH_recovery.json")
		return
	}
	if *benchTabu {
		cfg := experiments.Config{Scale: *scale, Seed: *seed}
		res, err := experiments.WriteTabuBench(cfg, "BENCH_tabu.json")
		if err != nil {
			log.Fatalf("benchtabu: %v", err)
		}
		fmt.Printf("tabu improve on %s (%d areas, %d regions): naive %.3fs, kernel %.3fs, speedup %.2fx\n",
			res.Dataset, res.Areas, res.Regions, res.SecondsBefore, res.SecondsAfter, res.Speedup)
		fmt.Println("wrote BENCH_tabu.json")
		return
	}
	cfg := experiments.Config{
		Scale:      *scale,
		Seed:       *seed,
		Iterations: *iterations,
		SkipTabu:   *noTabu,
	}
	ids := experiments.Names()
	if *experiment != "all" {
		ids = strings.Split(*experiment, ",")
	}
	for _, id := range ids {
		runner, ok := experiments.Registry[id]
		if !ok {
			log.Fatalf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		tables, err := runner(cfg)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Truncate(time.Millisecond))
	}
}
