package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"emp/internal/flight"
)

// runTrace implements the `empquery trace` subcommand: render a recorded
// solve's span tree with per-phase durations as an ASCII tree, plus its
// convergence curve.
//
//	empquery trace TRACE_obs.jsonl          # offline: a captured JSONL stream
//	empquery trace -addr http://host:8080 4bf92f3577b34da6a3ce929d0e0e4736
//
// A file argument is parsed as an obs JSONL event stream (as written by
// `empbench -trace` or `empbench -benchobs`) and every trace in it is
// rendered. Anything else is treated as a trace id and fetched from a live
// server's /v1/debug/trace/{id} endpoint.
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL for trace-id lookups")
	curve := fs.Bool("curve", false, "also print the convergence curve samples")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: empquery trace [-addr URL] [-curve] <trace-id | events.jsonl>")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	target := fs.Arg(0)
	if _, err := os.Stat(target); err == nil {
		renderTraceFile(target, *curve)
		return
	}
	renderTraceRemote(*addr, target, *curve)
}

// renderTraceFile renders every trace found in a captured JSONL stream.
func renderTraceFile(path string, curve bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	byTrace, order, err := flight.ParseJSONL(f)
	if err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	if len(order) == 0 {
		log.Fatalf("%s contains no identified span events", path)
	}
	for i, id := range order {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("trace %s (%d spans)\n", id, len(byTrace[id]))
		if err := flight.WriteTree(os.Stdout, flight.BuildTree(byTrace[id])); err != nil {
			log.Fatal(err)
		}
	}
	_ = curve // offline streams carry span events only; curves live server-side
}

// renderTraceRemote fetches /v1/debug/trace/{id} and renders the dump.
func renderTraceRemote(addr, id string, curve bool) {
	url := strings.TrimSuffix(addr, "/") + "/v1/debug/trace/" + id
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s (is %q a live or retained trace id, and the address right?)", url, resp.Status, id)
	}
	var dump flight.TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		log.Fatalf("decoding trace: %v", err)
	}
	state := "finished"
	if dump.InFlight {
		state = "in flight"
	}
	fmt.Printf("trace %s  dataset=%s  %s  (%d spans, %d curve samples)\n",
		dump.TraceID, dump.Dataset, state, len(dump.Spans), len(dump.Curve))
	if dump.DroppedSpans > 0 || dump.DroppedSamples > 0 {
		fmt.Printf("dropped: %d spans, %d samples\n", dump.DroppedSpans, dump.DroppedSamples)
	}
	if err := flight.WriteTree(os.Stdout, dump.Tree); err != nil {
		log.Fatal(err)
	}
	if len(dump.Curve) > 0 {
		final := dump.Curve[len(dump.Curve)-1]
		fmt.Printf("converged: p=%d H=%.4g after %s\n",
			final.P, final.H, time.Duration(final.ElapsedNs).Truncate(time.Microsecond))
	}
	if curve {
		fmt.Println("curve:")
		for _, s := range dump.Curve {
			fmt.Printf("  %12s  phase=%-12s p=%-5d H=%-14.6g moves=%d\n",
				time.Duration(s.ElapsedNs).Truncate(time.Microsecond), s.Phase, s.P, s.H, s.Moves)
		}
	}
}
