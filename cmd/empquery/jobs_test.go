package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestJobWatchReconnectsResumingSince: a stream that drops before the
// terminal event is re-dialed with ?since= advanced past everything already
// printed, and the watch completes once the resumed stream delivers the
// terminal event. This is the client half of the server's crash-recovery
// story: a watcher rides through an empserve restart.
func TestJobWatchReconnectsResumingSince(t *testing.T) {
	var mu sync.Mutex
	var sinceSeen []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		sinceSeen = append(sinceSeen, r.URL.Query().Get("since"))
		n := len(sinceSeen)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/x-ndjson")
		if n == 1 {
			// Two events, then the connection dies with the job unfinished.
			fmt.Fprintln(w, `{"seq":0,"type":"phase","phase":"construction"}`)
			fmt.Fprintln(w, `{"seq":1,"type":"incumbent","p":3,"h":1.5,"moves":2}`)
			return
		}
		fmt.Fprintln(w, `{"seq":2,"type":"done","state":"done","p":4,"h":1.25}`)
	}))
	defer srv.Close()

	jobWatch(srv.URL, "j1") // must terminate via the resumed stream's done event

	mu.Lock()
	defer mu.Unlock()
	if len(sinceSeen) != 2 {
		t.Fatalf("watch dialed %d times (%v), want 2", len(sinceSeen), sinceSeen)
	}
	if sinceSeen[0] != "0" || sinceSeen[1] != "2" {
		t.Fatalf("since cursors = %v, want [0 2] (resume past the delivered events)", sinceSeen)
	}
}
