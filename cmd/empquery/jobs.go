package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"
)

// runJobs implements the `empquery jobs` subcommand: drive a running
// empserve's async job API (docs/JOBS.md).
//
//	empquery jobs submit -name 2k -scale 0.25 -q "SUM(TOTALPOP) >= 20000"
//	empquery jobs status <job-id>
//	empquery jobs watch <job-id>        # stream incumbents until the job ends
//	empquery jobs cancel <job-id>
//	empquery jobs list
func runJobs(args []string) {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	name := fs.String("name", "", "named synthetic dataset (submit)")
	scale := fs.Float64("scale", 0, "scale for -name datasets (submit)")
	seed := fs.Int64("seed", 1, "random seed (submit)")
	query := fs.String("q", "", "semicolon-separated constraints (submit)")
	timeoutMS := fs.Int64("timeout-ms", 0, "solve deadline in ms, 0 = server max (submit)")
	watch := fs.Bool("watch", false, "after submit, stream events until the job ends")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: empquery jobs [-addr URL] <submit|status|watch|cancel|list> [args]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	base := strings.TrimSuffix(*addr, "/")
	switch verb := fs.Arg(0); verb {
	case "submit":
		if *name == "" || *query == "" {
			log.Fatal("jobs submit requires -name and -q")
		}
		id := jobSubmit(base, *name, *scale, *seed, *query, *timeoutMS)
		if *watch {
			jobWatch(base, id)
		}
	case "status":
		requireID(fs, "status")
		jobStatusCmd(base, fs.Arg(1))
	case "watch":
		requireID(fs, "watch")
		jobWatch(base, fs.Arg(1))
	case "cancel":
		requireID(fs, "cancel")
		jobCancel(base, fs.Arg(1))
	case "list":
		jobList(base)
	default:
		fs.Usage()
		os.Exit(2)
	}
}

func requireID(fs *flag.FlagSet, verb string) {
	if fs.NArg() != 2 {
		log.Fatalf("jobs %s requires exactly one job id", verb)
	}
}

// jobView mirrors the server's JobStatus wire shape (the fields this CLI
// renders; unknown fields are ignored by encoding/json).
type jobView struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Dataset   string  `json:"dataset"`
	TraceID   string  `json:"trace_id"`
	WarmFrom  string  `json:"warm_from"`
	Phase     string  `json:"phase"`
	ElapsedMs float64 `json:"elapsed_ms"`
	P         int     `json:"p"`
	H         float64 `json:"h"`
	Events    int     `json:"events"`
	Error     *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
	Result *struct {
		P           int     `json:"p"`
		HeteroAfter float64 `json:"hetero_after"`
		TabuMoves   int     `json:"tabu_moves"`
		Unassigned  int     `json:"unassigned"`
	} `json:"result"`
}

func decodeJob(resp *http.Response) jobView {
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		log.Fatalf("decoding job: %v", err)
	}
	return v
}

func printJob(v jobView) {
	fmt.Printf("job %s  state=%s  dataset=%s", v.ID, v.State, v.Dataset)
	if v.WarmFrom != "" {
		fmt.Printf("  warm_from=%s", v.WarmFrom)
	}
	fmt.Println()
	switch v.State {
	case "queued", "running":
		fmt.Printf("  phase=%s  elapsed=%.0fms  incumbent p=%d H=%.4g  (%d events)\n",
			v.Phase, v.ElapsedMs, v.P, v.H, v.Events)
	case "failed":
		fmt.Printf("  error: %s (%s)\n", v.Error.Message, v.Error.Code)
	default:
		fmt.Printf("  p=%d  H=%.4g", v.P, v.H)
		if v.Result != nil {
			fmt.Printf("  moves=%d  unassigned=%d", v.Result.TabuMoves, v.Result.Unassigned)
		}
		fmt.Println()
	}
	if v.TraceID != "" {
		fmt.Printf("  trace: empquery trace %s\n", v.TraceID)
	}
}

func jobSubmit(base, name string, scale float64, seed int64, query string, timeoutMS int64) string {
	body, err := json.Marshal(map[string]any{
		"named":       name,
		"scale":       scale,
		"constraints": query,
		"timeout_ms":  timeoutMS,
		"options":     map[string]any{"seed": seed},
	})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		log.Fatalf("POST %s/v1/jobs: %v", base, err)
	}
	v := decodeJob(resp)
	printJob(v)
	return v.ID
}

func jobStatusCmd(base, id string) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		log.Fatal(err)
	}
	printJob(decodeJob(resp))
}

// jobWatch streams the job's NDJSON event feed, rendering one line per
// event, until the terminal event arrives.
// jobWatch streams a job's event log until the terminal event, transparently
// reconnecting dropped streams. Each attempt resumes from `?since=<last seq
// + 1>`, so a server restart (or a load balancer cutting an idle stream)
// costs a pause, not duplicated or lost events. Reconnects back off
// exponentially from 250ms to 5s; after 8 consecutive attempts that deliver
// nothing the watch gives up. A 4xx — the job is gone or the request is
// malformed — is fatal immediately: retrying cannot fix it.
func jobWatch(base, id string) {
	const (
		baseBackoff = 250 * time.Millisecond
		maxBackoff  = 5 * time.Second
		maxFailures = 8
	)
	since, failures := 0, 0
	for {
		terminal, progressed, err := streamJobEvents(base, id, &since)
		if terminal {
			return
		}
		if progressed {
			failures = 0
		} else {
			failures++
			if failures >= maxFailures {
				log.Fatalf("watch: giving up after %d stalled reconnect attempts (last error: %v)", failures, err)
			}
		}
		d := baseBackoff << failures
		if d > maxBackoff {
			d = maxBackoff
		}
		fmt.Fprintf(os.Stderr, "watch: stream dropped (%v); reconnecting in %s from seq %d\n", err, d, since)
		time.Sleep(d)
	}
}

// streamJobEvents runs one NDJSON streaming attempt, printing events and
// advancing *since past each one. terminal reports that the job's final
// event arrived (the watch is complete); progressed reports whether this
// attempt delivered at least one event (resets the reconnect budget). It
// exits the process on 4xx responses and unparseable events.
func streamJobEvents(base, id string, since *int) (terminal, progressed bool, err error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?since=%d", base, id, *since))
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		msg := strings.TrimSpace(string(body))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			log.Fatalf("%s: %s", resp.Status, msg)
		}
		return false, false, fmt.Errorf("%s: %s", resp.Status, msg)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Seq       int     `json:"seq"`
			Type      string  `json:"type"`
			ElapsedMs float64 `json:"elapsed_ms"`
			Phase     string  `json:"phase"`
			P         int     `json:"p"`
			H         float64 `json:"h"`
			Moves     int     `json:"moves"`
			State     string  `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		*since = ev.Seq + 1
		progressed = true
		el := time.Duration(ev.ElapsedMs * float64(time.Millisecond)).Truncate(time.Millisecond)
		switch ev.Type {
		case "done":
			fmt.Printf("%4d  %8s  %s: %s  p=%d H=%.4g\n", ev.Seq, el, ev.Type, ev.State, ev.P, ev.H)
			return true, true, nil
		case "incumbent":
			fmt.Printf("%4d  %8s  %s  p=%d H=%.4g moves=%d\n", ev.Seq, el, ev.Type, ev.P, ev.H, ev.Moves)
		default:
			fmt.Printf("%4d  %8s  phase=%s\n", ev.Seq, el, ev.Phase)
		}
	}
	// The stream ended without a terminal event: the connection dropped (or
	// the server restarted mid-job). The caller reconnects from *since.
	if serr := sc.Err(); serr != nil {
		return false, progressed, serr
	}
	return false, progressed, io.ErrUnexpectedEOF
}

func jobCancel(base, id string) {
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Println(strings.TrimSpace(string(body)))
}

func jobList(base string) {
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []jobView
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		log.Fatalf("decoding job list: %v", err)
	}
	if len(rows) == 0 {
		fmt.Println("no jobs")
		return
	}
	for _, v := range rows {
		fmt.Printf("%s  %-8s  %-8s  p=%-4d H=%.4g\n", v.ID, v.State, v.Dataset, v.P, v.H)
	}
}
