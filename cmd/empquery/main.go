// Command empquery runs an EMP regionalization query against a dataset.
//
// Usage:
//
//	empquery -data 2k.json \
//	  -q "MIN(POP16UP) <= 3000; AVG(EMPLOYED) in [1500,3500]; SUM(TOTALPOP) >= 20000"
//
//	empquery -name 2k -scale 0.25 -q "SUM(TOTALPOP) >= 20000" -assign out.csv
//
// The query is a semicolon-separated list of SQL-ish constraints over the
// dataset's attribute columns. The command prints the feasibility report,
// the number of regions p, the unassigned count, heterogeneity before and
// after local search, and phase timings; -assign writes the final
// area-to-region assignment as CSV.
//
// The trace subcommand renders a solve's span tree and convergence summary,
// either live from a running empserve or offline from a captured JSONL
// stream:
//
//	empquery trace -addr http://localhost:8080 <trace_id>
//	empquery trace TRACE_obs.jsonl
//
// The jobs subcommand drives a running empserve's async job API
// (docs/JOBS.md): submit a solve without holding the connection, poll or
// stream its progress, cancel it:
//
//	empquery jobs submit -name 2k -scale 0.25 -q "SUM(TOTALPOP) >= 20000" -watch
//	empquery jobs status <job_id>
//	empquery jobs watch <job_id>
//	empquery jobs cancel <job_id>
//	empquery jobs list
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"emp"
	"emp/internal/census"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("empquery: ")
	// Subcommand dispatch happens before flag.Parse so `empquery trace ...`
	// and `empquery jobs ...` keep their own flag sets; the flag-based query
	// interface is unchanged.
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "jobs" {
		runJobs(os.Args[2:])
		return
	}
	var (
		dataPath   = flag.String("data", "", "dataset JSON path")
		shpBase    = flag.String("shp", "", "ESRI shapefile base path (reads <base>.shp/<base>.dbf)")
		dissim     = flag.String("dissim", "HOUSEHOLDS", "dissimilarity attribute for -shp datasets")
		name       = flag.String("name", "", "named synthetic dataset (alternative to -data)")
		scale      = flag.Float64("scale", 1, "scale for -name datasets")
		seed       = flag.Int64("seed", 1, "random seed")
		query      = flag.String("q", "", "semicolon-separated constraints (required)")
		iterations = flag.Int("iterations", 1, "construction iterations (best p kept)")
		mergeLimit = flag.Int("mergelimit", 3, "AVG merge limit")
		noTabu     = flag.Bool("notabu", false, "skip the local-search phase")
		assignOut  = flag.String("assign", "", "write area,region assignment CSV here")
		svgOut     = flag.String("svg", "", "render the solution as an SVG image here")
		gjOut      = flag.String("geojson", "", "write the solution as a GeoJSON FeatureCollection here")
		showReport = flag.Bool("report", false, "print the per-region statistics table")
		reportCSV  = flag.String("reportcsv", "", "write the per-region statistics as CSV here")
	)
	flag.Parse()
	if *query == "" {
		log.Fatal("-q is required")
	}

	ds, err := loadDataset(*dataPath, *shpBase, *dissim, *name, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	set, err := emp.ParseConstraints(*query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s (%d areas, %d components)\n", ds.Name, ds.N(), ds.Components())
	fmt.Printf("query:   %s\n", set)

	sol, err := emp.Solve(ds, set, emp.Options{
		Iterations:      *iterations,
		MergeLimit:      *mergeLimit,
		SkipLocalSearch: *noTabu,
		Seed:            *seed,
	})
	if sol != nil && sol.Feasibility() != nil {
		for _, w := range sol.Feasibility().Warnings {
			fmt.Printf("warning: %s\n", w)
		}
		fmt.Printf("filtered invalid areas: %d; seed areas: %d (upper bound on p)\n",
			sol.Feasibility().InvalidCount, sol.Feasibility().SeedCount)
	}
	if err != nil {
		if errors.Is(err, emp.ErrInfeasible) {
			fmt.Println("INFEASIBLE:")
			for _, r := range sol.Feasibility().Reasons {
				fmt.Printf("  - %s\n", r)
			}
			os.Exit(2)
		}
		log.Fatal(err)
	}

	st := sol.Stats()
	fmt.Printf("p = %d regions; unassigned |U0| = %d (%.1f%%)\n",
		sol.P, st.Unassigned, 100*float64(st.Unassigned)/float64(ds.N()))
	fmt.Printf("heterogeneity: %.4g -> %.4g (%.1f%% improvement)\n",
		sol.HeterogeneityBeforeLocalSearch(), sol.Heterogeneity(), 100*sol.HeteroImprovement())
	fmt.Printf("construction: %.3fs (%d iterations); local search: %.3fs (%d moves)\n",
		st.ConstructionSeconds, st.Iterations, st.LocalSearchSeconds, st.TabuMoves)

	if *showReport {
		if err := sol.Report().Render(os.Stdout, 25); err != nil {
			log.Fatal(err)
		}
	}
	if *reportCSV != "" {
		if err := writeFileWith(*reportCSV, func(f *os.File) error {
			return sol.Report().WriteCSV(f)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("region report written to %s\n", *reportCSV)
	}
	if *assignOut != "" {
		if err := writeAssignment(*assignOut, sol.Assignment()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("assignment written to %s\n", *assignOut)
	}
	if *svgOut != "" {
		if err := writeFileWith(*svgOut, func(f *os.File) error {
			return emp.RenderSVG(f, ds, sol.Assignment(), emp.RenderSVGOptions{})
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SVG written to %s\n", *svgOut)
	}
	if *gjOut != "" {
		if err := writeFileWith(*gjOut, func(f *os.File) error {
			return emp.WriteGeoJSON(f, ds, sol.Assignment())
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GeoJSON written to %s\n", *gjOut)
	}
}

func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}

func loadDataset(path, shpBase, dissim, name string, scale float64, seed int64) (*emp.Dataset, error) {
	switch {
	case path != "":
		return emp.LoadDataset(path)
	case shpBase != "":
		return emp.LoadShapefile(shpBase, emp.ShapefileOptions{Dissimilarity: dissim})
	case name != "" && scale < 1:
		return census.Scaled(name, scale, seed)
	case name != "":
		return census.NamedSeeded(name, seed)
	default:
		return nil, fmt.Errorf("one of -data, -shp or -name is required")
	}
}

func writeAssignment(path string, assign []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "area,region"); err != nil {
		return err
	}
	for a, r := range assign {
		if _, err := fmt.Fprintf(f, "%d,%d\n", a, r); err != nil {
			return err
		}
	}
	return f.Close()
}
