// Command empcheck verifies a regionalization solution against a dataset
// and a constraint query: every region must be spatially contiguous and
// satisfy every constraint, and the assignment must be consistent. It exits
// non-zero when the solution is invalid, making it usable as a pipeline
// gate after external tools produce or edit assignments.
//
// Usage:
//
//	empcheck -data 2k.json -assign solution.csv \
//	  -q "MIN(POP16UP) <= 3000; SUM(TOTALPOP) >= 20000"
//
// The assignment CSV is the format empquery -assign writes: a header line
// "area,region" followed by one row per area, region -1 for unassigned.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"emp"
	"emp/internal/constraint"
	"emp/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("empcheck: ")
	var (
		dataPath  = flag.String("data", "", "dataset JSON path (required)")
		assignCSV = flag.String("assign", "", "assignment CSV path (required)")
		query     = flag.String("q", "", "constraint list to verify against (required)")
	)
	flag.Parse()
	if *dataPath == "" || *assignCSV == "" || *query == "" {
		log.Fatal("-data, -assign and -q are all required")
	}

	ds, err := emp.LoadDataset(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	set, err := emp.ParseConstraints(*query)
	if err != nil {
		log.Fatal(err)
	}
	assign, err := readAssignment(*assignCSV, ds.N())
	if err != nil {
		log.Fatal(err)
	}

	problems := verify(ds, set, assign)
	coherence := stats.JoinCountSameRegion(assign, ds.Adjacency)
	p := 0
	seen := map[int]bool{}
	unassigned := 0
	for _, r := range assign {
		if r < 0 {
			unassigned++
		} else if !seen[r] {
			seen[r] = true
			p++
		}
	}
	fmt.Printf("solution: p = %d, unassigned = %d of %d, spatial coherence = %.2f\n",
		p, unassigned, ds.N(), coherence)
	if len(problems) == 0 {
		fmt.Println("OK: all regions contiguous and all constraints satisfied")
		return
	}
	fmt.Printf("INVALID: %d problem(s)\n", len(problems))
	for _, pr := range problems {
		fmt.Println(" -", pr)
	}
	os.Exit(1)
}

// verify returns a list of problems (empty = valid).
func verify(ds *emp.Dataset, set emp.ConstraintSet, assign []int) []string {
	var problems []string
	ev, err := constraint.NewEvaluator(set, ds.Column)
	if err != nil {
		return []string{err.Error()}
	}
	groups := map[int][]int{}
	for a, r := range assign {
		if r >= 0 {
			groups[r] = append(groups[r], a)
		}
	}
	if len(groups) == 0 {
		return []string{"no regions in assignment"}
	}
	g := ds.Graph()
	for r, members := range groups {
		if !g.ConnectedSubset(members) {
			problems = append(problems, fmt.Sprintf("region %d is not spatially contiguous (%d areas)", r, len(members)))
		}
		tr := ev.Compute(members)
		for i := 0; i < ev.Len(); i++ {
			if !tr.Satisfied(i) {
				problems = append(problems, fmt.Sprintf("region %d violates %s (value %.6g)", r, ev.At(i), tr.Value(i)))
			}
		}
	}
	return problems
}

func readAssignment(path string, n int) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 || records[0][0] != "area" {
		return nil, fmt.Errorf("assignment CSV must start with an 'area,region' header")
	}
	if len(records)-1 != n {
		return nil, fmt.Errorf("assignment has %d rows for %d areas", len(records)-1, n)
	}
	assign := make([]int, n)
	for i, rec := range records[1:] {
		area, err := strconv.Atoi(rec[0])
		if err != nil || area != i {
			return nil, fmt.Errorf("row %d: area id %q, want %d", i+1, rec[0], i)
		}
		r, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("row %d: bad region %q", i+1, rec[1])
		}
		assign[i] = r
	}
	return assign, nil
}
