module emp

go 1.22
